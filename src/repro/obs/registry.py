"""Thread-safe metrics registry: counters, gauges, latency histograms.

This module is the single source of truth for every counter in the
serving stack.  The legacy stats dataclasses (``CacheStats``,
``ServerStats``, ``NetServerStats``, ``PoolStats``) are frozen views
built from these metrics, so the two surfaces can never drift.

Design constraints, in order:

1. **Hot-path cost.**  ``Counter.inc()`` is lock-free: it consumes one
   tick of an :func:`itertools.count`, whose ``__next__`` is atomic
   under the GIL.  Reads and bulk adds are rare and take a lock,
   compensating for the ticks that reads themselves consume.  The warm
   serving path increments a handful of counters per request; the
   bench's instrumentation leg gates the total overhead at <= 5%.
2. **Exact under races.**  N threads calling ``inc()`` concurrently
   sum exactly -- no sampled or sloppy counters -- because the chaos
   invariant checker cross-checks registry counters against the legacy
   stats after every soak phase.
3. **Mergeable.**  ``snapshot()`` produces a plain-dict value that
   :func:`merge_snapshots` combines associatively and commutatively,
   which is what lets the :class:`~repro.serve_net.workers.DecodePool`
   dispatcher aggregate per-lane worker registries (and keep the
   totals of lanes that died).

Histograms use fixed log-spaced buckets; display quantiles are exact
within a bucket via linear interpolation over the cumulative counts.
:func:`exact_quantile` is the shared sample-quantile kernel (linear
interpolation, identical to ``numpy.quantile``'s default method) used
both here and by ``repro.serve_net.loadgen``.
"""

from __future__ import annotations

import itertools
import math
import threading
from bisect import bisect_left
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BOUNDS",
    "DEFAULT_SIZE_BOUNDS",
    "exact_quantile",
    "merge_snapshots",
    "render_prometheus",
    "default_registry",
    "set_default_registry",
]

# Quarter-decade log spacing from 1 microsecond to 100 seconds: wide
# enough for a cold multi-shard fill, fine enough that interpolated
# p99s land within ~30% of the true value.
DEFAULT_LATENCY_BOUNDS: Tuple[float, ...] = tuple(
    round(10.0 ** (exponent / 4.0), 12) for exponent in range(-24, 9)
)

# Powers of two for size-like observations (batch sizes, byte counts).
DEFAULT_SIZE_BOUNDS: Tuple[float, ...] = tuple(float(2**i) for i in range(17))


def exact_quantile(values: Sequence[float], q: float, *, presorted: bool = False) -> float:
    """Sample quantile with linear interpolation between closest ranks.

    Matches ``numpy.quantile(values, q)`` (the default ``"linear"``
    method): the quantile sits at fractional rank ``q * (n - 1)`` of
    the sorted sample.  Shared by :class:`Histogram` display quantiles
    and ``loadgen.latency_summary`` so every percentile in the repo
    comes from one definition.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    xs = list(values) if presorted else sorted(values)
    if not xs:
        raise ValueError("cannot take a quantile of an empty sequence")
    position = q * (len(xs) - 1)
    lower = math.floor(position)
    upper = math.ceil(position)
    if lower == upper:
        return float(xs[lower])
    fraction = position - lower
    return float(xs[lower]) * (1.0 - fraction) + float(xs[upper]) * fraction


class Counter:
    """Monotonic counter with a lock-free single-increment fast path.

    ``inc()`` consumes one tick of an ``itertools.count`` -- atomic
    under the GIL, no lock.  Reads also consume a tick, so ``value``
    subtracts the number of reads taken so far; bulk adds accumulate
    in a locked offset.  Both are rare next to increments.
    """

    __slots__ = ("name", "_ticks", "_lock", "_reads", "_offset")

    def __init__(self, name: str) -> None:
        self.name = name
        self._ticks = itertools.count()
        self._lock = threading.Lock()
        self._reads = 0
        self._offset = 0

    def inc(self, amount: int = 1) -> None:
        if amount == 1:
            next(self._ticks)
            return
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (amount={amount})")
        with self._lock:
            self._offset += amount

    @property
    def value(self) -> int:
        with self._lock:
            ticks_plus_reads = next(self._ticks)
            observed = ticks_plus_reads - self._reads + self._offset
            self._reads += 1
            return observed


class Gauge:
    """A value that can go up and down (e.g. in-flight requests)."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def add(self, delta: float) -> None:
        with self._lock:
            self._value += float(delta)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Fixed-bucket histogram with log-spaced bounds.

    Observations land in the bucket whose upper bound is the first one
    ``>= value`` (``bisect_left`` over the bound tuple); values above
    the last bound go to an overflow bucket.  Quantiles walk the
    cumulative counts to the bucket containing fractional rank
    ``q * (count - 1)`` (the :func:`exact_quantile` convention) and
    interpolate linearly inside it, clamped to the observed min/max.
    """

    __slots__ = ("name", "bounds", "_lock", "_buckets", "_count", "_sum", "_min", "_max")

    def __init__(self, name: str, bounds: Optional[Sequence[float]] = None) -> None:
        self.name = name
        chosen = tuple(float(b) for b in (bounds or DEFAULT_LATENCY_BOUNDS))
        if not chosen or any(b2 <= b1 for b1, b2 in zip(chosen, chosen[1:])):
            raise ValueError(f"histogram {name!r} bounds must be strictly increasing")
        self.bounds = chosen
        self._lock = threading.Lock()
        self._buckets = [0] * (len(chosen) + 1)
        self._count = 0
        self._sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None

    def observe(self, value: float) -> None:
        value = float(value)
        index = bisect_left(self.bounds, value)
        with self._lock:
            self._buckets[index] += 1
            self._count += 1
            self._sum += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            return {
                "count": self._count,
                "sum": self._sum,
                "min": self._min,
                "max": self._max,
                "bounds": list(self.bounds),
                "buckets": list(self._buckets),
            }

    def quantile(self, q: float) -> float:
        """Interpolated quantile from the bucket counts (0 if empty)."""
        return _snapshot_quantile(self.snapshot(), q)

    def percentiles(self) -> Dict[str, float]:
        snap = self.snapshot()
        return {
            "p50": _snapshot_quantile(snap, 0.50),
            "p95": _snapshot_quantile(snap, 0.95),
            "p99": _snapshot_quantile(snap, 0.99),
        }


def _snapshot_quantile(snap: Mapping[str, object], q: float) -> float:
    """Exact-rank interpolated quantile over a histogram snapshot."""
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    count = int(snap["count"])  # type: ignore[arg-type]
    if count == 0:
        return 0.0
    bounds: List[float] = list(snap["bounds"])  # type: ignore[arg-type]
    buckets: List[int] = list(snap["buckets"])  # type: ignore[arg-type]
    lo = float(snap["min"])  # type: ignore[arg-type]
    hi = float(snap["max"])  # type: ignore[arg-type]
    target = q * (count - 1)
    cumulative = 0
    for index, bucket_count in enumerate(buckets):
        if bucket_count == 0:
            continue
        # Ranks [cumulative, cumulative + bucket_count - 1] live here.
        if target <= cumulative + bucket_count - 1:
            lower_edge = bounds[index - 1] if index > 0 else lo
            upper_edge = bounds[index] if index < len(bounds) else hi
            if bucket_count == 1:
                interpolated = (lower_edge + upper_edge) / 2.0
            else:
                fraction = (target - cumulative) / (bucket_count - 1)
                interpolated = lower_edge + fraction * (upper_edge - lower_edge)
            return float(min(max(interpolated, lo), hi))
        cumulative += bucket_count
    return hi


class _NoopCounter:
    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def inc(self, amount: int = 1) -> None:
        pass

    @property
    def value(self) -> int:
        return 0


class _NoopGauge:
    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def set(self, value: float) -> None:
        pass

    def add(self, delta: float) -> None:
        pass

    @property
    def value(self) -> float:
        return 0.0


class _NoopHistogram:
    __slots__ = ("name", "bounds")

    def __init__(self, name: str, bounds: Optional[Sequence[float]] = None) -> None:
        self.name = name
        self.bounds = tuple(float(b) for b in (bounds or DEFAULT_LATENCY_BOUNDS))

    def observe(self, value: float) -> None:
        pass

    @property
    def count(self) -> int:
        return 0

    @property
    def sum(self) -> float:
        return 0.0

    def snapshot(self) -> Dict[str, object]:
        return {
            "count": 0,
            "sum": 0.0,
            "min": None,
            "max": None,
            "bounds": list(self.bounds),
            "buckets": [0] * (len(self.bounds) + 1),
        }

    def quantile(self, q: float) -> float:
        return 0.0

    def percentiles(self) -> Dict[str, float]:
        return {"p50": 0.0, "p95": 0.0, "p99": 0.0}


class MetricsRegistry:
    """Named metrics with get-or-create semantics.

    A disabled registry (``enabled=False``) hands out no-op metric
    objects so instrumented code pays only an attribute call; the flag
    is fixed at construction so the hot path never branches on it.
    Component constructors accept a ``metrics=`` registry so tests and
    the overhead bench can isolate or disable them; the process-wide
    :func:`default_registry` is reserved for module-level metrics
    (e.g. mmap-pool opens) that have no owning instance.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = bool(enabled)
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        if not self.enabled:
            return _NoopCounter(name)  # type: ignore[return-value]
        with self._lock:
            metric = self._counters.get(name)
            if metric is None:
                self._check_unused(name, self._counters)
                metric = self._counters[name] = Counter(name)
            return metric

    def gauge(self, name: str) -> Gauge:
        if not self.enabled:
            return _NoopGauge(name)  # type: ignore[return-value]
        with self._lock:
            metric = self._gauges.get(name)
            if metric is None:
                self._check_unused(name, self._gauges)
                metric = self._gauges[name] = Gauge(name)
            return metric

    def histogram(self, name: str, bounds: Optional[Sequence[float]] = None) -> Histogram:
        if not self.enabled:
            return _NoopHistogram(name, bounds)  # type: ignore[return-value]
        with self._lock:
            metric = self._histograms.get(name)
            if metric is None:
                self._check_unused(name, self._histograms)
                metric = self._histograms[name] = Histogram(name, bounds)
            elif bounds is not None and tuple(float(b) for b in bounds) != metric.bounds:
                raise ValueError(f"histogram {name!r} already registered with different bounds")
            return metric

    def _check_unused(self, name: str, own_kind: Mapping[str, object]) -> None:
        for kind in (self._counters, self._gauges, self._histograms):
            if kind is not own_kind and name in kind:
                raise ValueError(f"metric {name!r} already registered as a different type")

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Plain-dict snapshot: mergeable, JSON-serialisable."""
        with self._lock:
            counters = list(self._counters.values())
            gauges = list(self._gauges.values())
            histograms = list(self._histograms.values())
        return {
            "counters": {c.name: c.value for c in counters},
            "gauges": {g.name: g.value for g in gauges},
            "histograms": {h.name: h.snapshot() for h in histograms},
        }

    def as_dict(self) -> Dict[str, Dict[str, object]]:
        return self.snapshot()


_EMPTY_SNAPSHOT: Dict[str, Dict[str, object]] = {"counters": {}, "gauges": {}, "histograms": {}}


def merge_snapshots(*snapshots: Optional[Mapping[str, object]]) -> Dict[str, Dict[str, object]]:
    """Combine registry snapshots: associative, commutative, None-safe.

    Counters and gauges sum; histograms with identical bounds sum
    bucket-wise and combine min/max.  This is what makes per-lane
    worker aggregation order-independent and lets dead lanes' totals
    fold into the live view.
    """
    counters: Dict[str, int] = {}
    gauges: Dict[str, float] = {}
    histograms: Dict[str, Dict[str, object]] = {}
    for snap in snapshots:
        if not snap:
            continue
        for name, value in snap.get("counters", {}).items():  # type: ignore[union-attr]
            counters[name] = counters.get(name, 0) + int(value)
        for name, value in snap.get("gauges", {}).items():  # type: ignore[union-attr]
            gauges[name] = gauges.get(name, 0.0) + float(value)
        for name, hist in snap.get("histograms", {}).items():  # type: ignore[union-attr]
            existing = histograms.get(name)
            if existing is None:
                histograms[name] = {
                    "count": int(hist["count"]),
                    "sum": float(hist["sum"]),
                    "min": hist["min"],
                    "max": hist["max"],
                    "bounds": list(hist["bounds"]),
                    "buckets": list(hist["buckets"]),
                }
                continue
            if list(hist["bounds"]) != existing["bounds"]:
                raise ValueError(f"cannot merge histogram {name!r}: bucket bounds differ")
            existing["count"] = int(existing["count"]) + int(hist["count"])
            existing["sum"] = float(existing["sum"]) + float(hist["sum"])
            mins = [m for m in (existing["min"], hist["min"]) if m is not None]
            maxes = [m for m in (existing["max"], hist["max"]) if m is not None]
            existing["min"] = min(mins) if mins else None
            existing["max"] = max(maxes) if maxes else None
            existing["buckets"] = [
                a + b for a, b in zip(existing["buckets"], hist["buckets"])  # type: ignore[arg-type]
            ]
    return {"counters": counters, "gauges": gauges, "histograms": histograms}


def _series_name(name: str) -> str:
    """Dotted metric name -> Prometheus-safe series name."""
    cleaned = "".join(ch if ch.isalnum() or ch == "_" else "_" for ch in name.replace(".", "_"))
    if not cleaned or cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned


def _format_value(value: float) -> str:
    as_float = float(value)
    if as_float == int(as_float) and abs(as_float) < 1e15:
        return str(int(as_float))
    return repr(as_float)


def render_prometheus(snapshot: Mapping[str, object]) -> str:
    """Render a registry snapshot as Prometheus text exposition v0.0.4."""
    lines: List[str] = []
    for name in sorted(snapshot.get("counters", {})):  # type: ignore[union-attr]
        series = _series_name(name)
        lines.append(f"# TYPE {series} counter")
        lines.append(f"{series} {_format_value(snapshot['counters'][name])}")  # type: ignore[index]
    for name in sorted(snapshot.get("gauges", {})):  # type: ignore[union-attr]
        series = _series_name(name)
        lines.append(f"# TYPE {series} gauge")
        lines.append(f"{series} {_format_value(snapshot['gauges'][name])}")  # type: ignore[index]
    for name in sorted(snapshot.get("histograms", {})):  # type: ignore[union-attr]
        hist = snapshot["histograms"][name]  # type: ignore[index]
        series = _series_name(name)
        lines.append(f"# TYPE {series} histogram")
        cumulative = 0
        for bound, bucket_count in zip(hist["bounds"], hist["buckets"]):
            cumulative += bucket_count
            lines.append(f'{series}_bucket{{le="{repr(float(bound))}"}} {cumulative}')
        cumulative += hist["buckets"][-1]
        lines.append(f'{series}_bucket{{le="+Inf"}} {cumulative}')
        lines.append(f"{series}_sum {_format_value(hist['sum'])}")
        lines.append(f"{series}_count {_format_value(hist['count'])}")
    return "\n".join(lines) + "\n"


_default_lock = threading.Lock()
_default_registry = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """Process-wide registry for module-level metrics."""
    with _default_lock:
        return _default_registry


def set_default_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-wide registry; returns the previous one.

    Used by the instrumentation-overhead bench to silence module-level
    metrics for its disabled leg.  Instrumented call sites resolve
    metrics through :func:`default_registry` at event time (the events
    are rare), so a swap takes effect immediately.
    """
    global _default_registry
    with _default_lock:
        previous = _default_registry
        _default_registry = registry
        return previous
