"""Request tracing: spans, samplers, and a bounded ring of traces.

A trace is a tree of :class:`Span` records covering one request as it
moves client -> ``NetPulseServer`` -> ``PulseServer`` -> cache/store ->
``DecodePool``.  The active span travels through the stack in a
:mod:`contextvars` context variable; thread hops (executor submits)
must copy the context explicitly because ``run_in_executor`` does not
propagate it -- the instrumented call sites in ``repro.store.server``
and ``repro.serve_net.server`` do this.

Timestamps are ``time.perf_counter()``.  On Linux that clock is
``CLOCK_MONOTONIC``, which is system-wide, so spans measured inside a
decode-worker process are directly comparable to the parent's -- the
worker ships ``(stage, start, duration)`` back in its result tuple and
the parent grafts it into the live trace.  Across a real network hop
the client and server clocks are unrelated; only durations are
meaningful there.

Tracing is sampled (``sample_rate``) and bounded (``capacity`` recent
traces in a ring), so it is safe to leave on in production at the
default rate.
"""

from __future__ import annotations

import contextlib
import os
import random
import threading
import time
from collections import deque
from contextvars import ContextVar
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence

__all__ = [
    "Span",
    "Tracer",
    "DEFAULT_TRACE_SAMPLE_RATE",
    "DEFAULT_TRACE_CAPACITY",
    "current_span",
    "activate",
    "span",
    "format_trace_tree",
    "stage_breakdown",
    "merge_trace_spans",
]

DEFAULT_TRACE_SAMPLE_RATE = 0.01
DEFAULT_TRACE_CAPACITY = 256

_CURRENT_SPAN: ContextVar[Optional["Span"]] = ContextVar("repro_obs_span", default=None)


def _new_id() -> int:
    """Random non-zero 63-bit id; os.urandom is fork- and thread-safe."""
    while True:
        value = int.from_bytes(os.urandom(8), "little") & ((1 << 63) - 1)
        if value:
            return value


class Span:
    """One timed stage of a trace.

    Spans are created through a :class:`Tracer` (roots) or from a
    parent span (children); ``duration_s`` is ``None`` until finished.
    Finishing the root span publishes the whole trace into the
    tracer's ring buffer.
    """

    __slots__ = (
        "trace_id",
        "span_id",
        "parent_id",
        "stage",
        "start_s",
        "duration_s",
        "tags",
        "_trace",
    )

    def __init__(
        self,
        trace_id: int,
        span_id: int,
        parent_id: Optional[int],
        stage: str,
        start_s: float,
        trace: "_TraceBuffer",
        tags: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.stage = stage
        self.start_s = start_s
        self.duration_s: Optional[float] = None
        self.tags: Dict[str, Any] = dict(tags or {})
        self._trace = trace

    def child(self, stage: str, **tags: Any) -> "Span":
        """Start a child span (caller must ``finish`` it)."""
        child = Span(self.trace_id, _new_id(), self.span_id, stage, time.perf_counter(), self._trace, tags)
        self._trace.add(child)
        return child

    def add_finished_child(
        self, stage: str, start_s: float, duration_s: float, **tags: Any
    ) -> "Span":
        """Graft an externally measured span (e.g. from a decode worker)."""
        child = Span(self.trace_id, _new_id(), self.span_id, stage, float(start_s), self._trace, tags)
        child.duration_s = float(duration_s)
        self._trace.add(child)
        return child

    def finish(self) -> None:
        if self.duration_s is None:
            self.duration_s = time.perf_counter() - self.start_s
        self._trace.finished(self)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "trace_id": f"{self.trace_id:016x}",
            "span_id": f"{self.span_id:016x}",
            "parent_id": f"{self.parent_id:016x}" if self.parent_id else None,
            "stage": self.stage,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "tags": dict(self.tags),
        }


class _TraceBuffer:
    """Accumulates the spans of one trace until its root finishes."""

    __slots__ = ("tracer", "root_span_id", "started_unix", "_lock", "_spans", "_published")

    def __init__(self, tracer: "Tracer", root_span_id: int) -> None:
        self.tracer = tracer
        self.root_span_id = root_span_id
        self.started_unix = time.time()
        self._lock = threading.Lock()
        self._spans: List[Span] = []
        self._published = False

    def add(self, span_obj: Span) -> None:
        with self._lock:
            # Bound runaway traces (a storm of children on one request).
            if len(self._spans) < 512:
                self._spans.append(span_obj)

    def finished(self, span_obj: Span) -> None:
        if span_obj.span_id != self.root_span_id:
            return
        with self._lock:
            if self._published:
                return
            self._published = True
            spans = list(self._spans)
        self.tracer._publish(
            {
                "trace_id": f"{span_obj.trace_id:016x}",
                "started_unix": self.started_unix,
                "duration_s": span_obj.duration_s,
                "spans": [s.as_dict() for s in spans],
            }
        )


class Tracer:
    """Sampling trace collector with a bounded ring of recent traces."""

    def __init__(
        self,
        sample_rate: float = DEFAULT_TRACE_SAMPLE_RATE,
        capacity: int = DEFAULT_TRACE_CAPACITY,
        seed: Optional[int] = None,
    ) -> None:
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError(f"sample_rate must be in [0, 1], got {sample_rate}")
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sample_rate = float(sample_rate)
        self.capacity = int(capacity)
        self._lock = threading.Lock()
        self._rng = random.Random(seed)
        self._ring: deque = deque(maxlen=self.capacity)
        self._started = 0
        self._dropped = 0

    def sampled(self) -> bool:
        """One sampling decision (thread-safe)."""
        if self.sample_rate <= 0.0:
            return False
        if self.sample_rate >= 1.0:
            return True
        with self._lock:
            return self._rng.random() < self.sample_rate

    def start_trace(
        self,
        stage: str,
        *,
        trace_id: Optional[int] = None,
        parent_id: Optional[int] = None,
        force: bool = False,
        **tags: Any,
    ) -> Optional[Span]:
        """Start a root span, or ``None`` if this request is not sampled.

        A caller-supplied ``trace_id`` (i.e. the client already sampled
        this request and propagated its ids over the wire) always
        starts a trace, as does ``force=True``; otherwise the tracer's
        own sampling decision applies.
        """
        if trace_id is None and not force and not self.sampled():
            return None
        with self._lock:
            self._started += 1
        root_id = _new_id()
        buffer = _TraceBuffer(self, root_id)
        root = Span(
            trace_id if trace_id is not None else _new_id(),
            root_id,
            parent_id or None,
            stage,
            time.perf_counter(),
            buffer,
            tags,
        )
        buffer.add(root)
        return root

    def _publish(self, trace_dict: Dict[str, Any]) -> None:
        with self._lock:
            if len(self._ring) == self._ring.maxlen:
                self._dropped += 1
            self._ring.append(trace_dict)

    def recent(self, limit: Optional[int] = None) -> List[Dict[str, Any]]:
        """Most recent completed traces, newest last."""
        with self._lock:
            traces = list(self._ring)
        if limit is not None and limit >= 0:
            traces = traces[-limit:]
        return traces

    def find(self, trace_id: int) -> Optional[Dict[str, Any]]:
        wanted = f"{trace_id:016x}"
        for trace_dict in reversed(self.recent()):
            if trace_dict["trace_id"] == wanted:
                return trace_dict
        return None

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "started": self._started,
                "buffered": len(self._ring),
                "dropped": self._dropped,
                "capacity": self.capacity,
            }


def current_span() -> Optional[Span]:
    """The span active in this context, if any."""
    return _CURRENT_SPAN.get()


@contextlib.contextmanager
def activate(span_obj: Optional[Span]) -> Iterator[Optional[Span]]:
    """Make ``span_obj`` the current span for the enclosed block.

    ``None`` is accepted and simply clears the context, so call sites
    do not need to branch on whether the request is sampled.
    """
    token = _CURRENT_SPAN.set(span_obj)
    try:
        yield span_obj
    finally:
        _CURRENT_SPAN.reset(token)


@contextlib.contextmanager
def span(stage: str, **tags: Any) -> Iterator[Optional[Span]]:
    """Open a child of the current span; no-op when nothing is active.

    The child becomes the current span inside the block and is
    finished on exit, so nested ``with span(...)`` blocks build the
    stage tree with no explicit plumbing.
    """
    parent = _CURRENT_SPAN.get()
    if parent is None:
        yield None
        return
    child = parent.child(stage, **tags)
    token = _CURRENT_SPAN.set(child)
    try:
        yield child
    finally:
        _CURRENT_SPAN.reset(token)
        child.finish()


def _children_of(spans: Sequence[Mapping[str, Any]]) -> Dict[Optional[str], List[Mapping[str, Any]]]:
    children: Dict[Optional[str], List[Mapping[str, Any]]] = {}
    ids = {s["span_id"] for s in spans}
    for s in spans:
        parent = s["parent_id"] if s["parent_id"] in ids else None
        children.setdefault(parent, []).append(s)
    for siblings in children.values():
        siblings.sort(key=lambda s: s["start_s"])
    return children


def format_trace_tree(trace_dict: Mapping[str, Any]) -> str:
    """Human-readable indented tree of one trace's spans."""
    spans = list(trace_dict.get("spans", []))
    lines = [f"trace {trace_dict.get('trace_id')}  ({len(spans)} spans)"]
    children = _children_of(spans)

    def walk(node: Mapping[str, Any], depth: int) -> None:
        duration = node.get("duration_s")
        duration_ms = f"{duration * 1e3:8.3f} ms" if duration is not None else "   (open)  "
        tags = node.get("tags") or {}
        tag_text = "  " + " ".join(f"{k}={v}" for k, v in sorted(tags.items())) if tags else ""
        lines.append(f"  {'  ' * depth}{duration_ms}  {node['stage']}{tag_text}")
        for child in children.get(node["span_id"], []):
            walk(child, depth + 1)

    for root in children.get(None, []):
        walk(root, 0)
    return "\n".join(lines)


def stage_breakdown(
    spans: Sequence[Mapping[str, Any]], *, epsilon_s: float = 2e-3
) -> Dict[str, Any]:
    """Validate span nesting and compute per-stage self times.

    Self time of a span is its duration minus the summed durations of
    its direct children.  For a well-formed trace measured on one
    machine (one ``perf_counter`` domain): every child lies inside its
    parent (within ``epsilon_s``), all self times are >= -epsilon, and
    the self times sum to the root's end-to-end duration.  The bench's
    trace-coverage gate runs on exactly this check.
    """
    problems: List[str] = []
    children = _children_of(spans)
    roots = children.get(None, [])
    if len(roots) != 1:
        problems.append(f"expected exactly one root span, found {len(roots)}")
    self_times: Dict[str, float] = {}
    total_self = 0.0
    for node in spans:
        duration = node.get("duration_s")
        if duration is None:
            problems.append(f"span {node['stage']} never finished")
            continue
        kids = children.get(node["span_id"], [])
        child_total = 0.0
        for kid in kids:
            kid_duration = kid.get("duration_s") or 0.0
            child_total += kid_duration
            if kid["start_s"] < node["start_s"] - epsilon_s:
                problems.append(f"{kid['stage']} starts before parent {node['stage']}")
            if kid["start_s"] + kid_duration > node["start_s"] + duration + epsilon_s:
                problems.append(f"{kid['stage']} ends after parent {node['stage']}")
        for first, second in zip(kids, kids[1:]):
            first_end = first["start_s"] + (first.get("duration_s") or 0.0)
            if first_end > second["start_s"] + epsilon_s:
                problems.append(
                    f"siblings {first['stage']} and {second['stage']} overlap under {node['stage']}"
                )
        self_time = duration - child_total
        if self_time < -epsilon_s:
            problems.append(f"{node['stage']} children outlast it by {-self_time:.6f}s")
        self_times[node["stage"]] = self_times.get(node["stage"], 0.0) + self_time
        total_self += self_time
    root_duration = (roots[0].get("duration_s") or 0.0) if roots else 0.0
    if total_self > root_duration + epsilon_s:
        problems.append(
            f"stage self-times sum to {total_self:.6f}s, more than the "
            f"end-to-end {root_duration:.6f}s"
        )
    return {
        "ok": not problems,
        "problems": problems,
        "stages": sorted({s["stage"] for s in spans}),
        "self_s": self_times,
        "total_self_s": total_self,
        "end_to_end_s": root_duration,
    }


def merge_trace_spans(*trace_dicts: Optional[Mapping[str, Any]]) -> List[Dict[str, Any]]:
    """Union of span lists from partial views of one trace (deduped).

    The client and the server each buffer their own half of a trace;
    this stitches them for :func:`stage_breakdown`.
    """
    merged: Dict[str, Dict[str, Any]] = {}
    for trace_dict in trace_dicts:
        if not trace_dict:
            continue
        for span_dict in trace_dict.get("spans", []):
            merged.setdefault(span_dict["span_id"], dict(span_dict))
    return sorted(merged.values(), key=lambda s: s["start_s"])
