"""Unified telemetry for the serving stack: metrics, tracing, exposition.

Three pieces:

- :mod:`repro.obs.registry` -- thread-safe counters/gauges/histograms
  with mergeable snapshots and Prometheus text exposition.  The legacy
  stats dataclasses are views over these metrics.
- :mod:`repro.obs.trace` -- sampled request tracing with spans that
  propagate client -> net server -> serving -> decode workers.
- :mod:`repro.obs.httpd` -- a stdlib HTTP endpoint for scrapers.

See the README "Observability" section for the metric catalog and the
span diagram.
"""

from .registry import (
    DEFAULT_LATENCY_BOUNDS,
    DEFAULT_SIZE_BOUNDS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
    exact_quantile,
    merge_snapshots,
    render_prometheus,
    set_default_registry,
)
from .trace import (
    DEFAULT_TRACE_CAPACITY,
    DEFAULT_TRACE_SAMPLE_RATE,
    Span,
    Tracer,
    activate,
    current_span,
    format_trace_tree,
    merge_trace_spans,
    span,
    stage_breakdown,
)
from .httpd import MetricsHTTPServer, start_metrics_server

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BOUNDS",
    "DEFAULT_SIZE_BOUNDS",
    "exact_quantile",
    "merge_snapshots",
    "render_prometheus",
    "default_registry",
    "set_default_registry",
    "Span",
    "Tracer",
    "DEFAULT_TRACE_SAMPLE_RATE",
    "DEFAULT_TRACE_CAPACITY",
    "current_span",
    "activate",
    "span",
    "format_trace_tree",
    "stage_breakdown",
    "merge_trace_spans",
    "MetricsHTTPServer",
    "start_metrics_server",
]
