"""Table VIII: FPGA resource usage of the int-DCT-W IDCT engines.

LUT/FF estimates derive from our engines' real operation graphs with
constants calibrated once to the paper's Vivado results; the structural
claims (engines tiny vs the QICK baseline until WS=32 explodes) are
asserted.
"""

from conftest import once
from repro.microarch import QICK_BASELINE_RESOURCES, ZCU7EV_TOTALS, idct_resources


def test_table08_fpga_resources(benchmark, record_table):
    paper = {8: (601, 266), 16: (1954, 671), 32: (9063, 1197)}

    def experiment():
        rows = [
            [
                "QICK baseline",
                QICK_BASELINE_RESOURCES.luts,
                QICK_BASELINE_RESOURCES.flipflops,
                "1.4% / 1.4%",
                "3386 / 6448",
            ]
        ]
        for ws, (p_luts, p_ffs) in paper.items():
            estimate = idct_resources(ws)
            lut_pct, ff_pct = estimate.utilization(ZCU7EV_TOTALS)
            rows.append(
                [
                    f"int-DCT-W WS={ws}",
                    estimate.luts,
                    estimate.flipflops,
                    f"{lut_pct:.2f}% / {ff_pct:.2f}%",
                    f"{p_luts} / {p_ffs}",
                ]
            )
        # Structural claims from the paper's discussion.
        assert idct_resources(8).luts < QICK_BASELINE_RESOURCES.luts
        assert idct_resources(16).luts < QICK_BASELINE_RESOURCES.luts
        assert idct_resources(32).luts > QICK_BASELINE_RESOURCES.luts
        assert idct_resources(32).luts / ZCU7EV_TOTALS.luts > 0.02
        return rows

    rows = once(benchmark, experiment)
    record_table(
        "Table VIII: LUT/FF usage per IDCT engine (zc7u7ev)",
        ["design", "LUTs", "FFs", "utilization", "paper LUTs/FFs"],
        rows,
        note="WS=32 overtakes the whole baseline -- the sub-optimal design point",
    )
