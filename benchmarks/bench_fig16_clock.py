"""Fig 16: fabric clock degradation with an unpipelined IDCT inline.

The timing model walks the engines' real adder-level depth (multipliers
modeled as deep adder chains); constants calibrated once against QICK's
294 MHz baseline synthesis.
"""

from conftest import once
from repro.microarch import ClockModel


def test_fig16_clock_degradation(benchmark, record_table):
    paper = {
        ("DCT-W", 8): 0.67,
        ("int-DCT-W", 8): 0.92,
        ("int-DCT-W", 16): 0.90,
        ("int-DCT-W", 32): 0.83,
    }

    def experiment():
        clock = ClockModel()
        rows = [["baseline (QICK)", f"{clock.baseline_fmax_hz / 1e6:.0f}", "1.00", "1.00"]]
        for (variant, ws), reference in paper.items():
            normalized = clock.normalized_fmax(ws, variant)
            rows.append(
                [
                    f"{variant} WS={ws}",
                    f"{clock.fmax_hz(ws, variant) / 1e6:.0f}",
                    f"{normalized:.2f}",
                    f"{reference:.2f}",
                ]
            )
            assert abs(normalized - reference) < 0.12
        # pipelining restores the baseline clock (Section VII-C)
        assert clock.normalized_fmax(16, pipelined=True) == 1.0
        ordering = [
            clock.normalized_fmax(8, "DCT-W"),
            clock.normalized_fmax(32),
            clock.normalized_fmax(16),
            clock.normalized_fmax(8),
        ]
        assert ordering == sorted(ordering)
        return rows

    rows = once(benchmark, experiment)
    record_table(
        "Fig 16: normalized achievable clock frequency",
        ["design", "fmax (MHz)", "normalized (ours)", "normalized (paper)"],
        rows,
        note="multiplier-based DCT-W pays the most; int-DCT-W degrades <10-17%",
    )
