"""Fig 7: compressibility and distortion of the qft-4 working set.

(a) per-waveform R for five representative Guadalupe waveforms under
    delta / DCT-N / DCT-W / int-DCT-W;
(b) overall R for the qft-4 pulse inventory;
(c) mean MSE per variant and window size.
"""

import numpy as np

from conftest import once
from repro.compression import compress_waveform
from repro.core import CompaqtCompiler
from repro.transforms import delta_compress


def _qft4_library(guadalupe):
    """The waveforms a transpiled qft-4 on qubits 0-3 actually uses."""
    keys = []
    for q in range(4):
        keys += [("x", (q,)), ("sx", (q,)), ("measure", (q,))]
    for pair in [(0, 1), (1, 0), (1, 2), (2, 1), (2, 3), (3, 2)]:
        if (("cx", pair)) in guadalupe.pulse_library():
            keys.append(("cx", pair))
    keys = [k for k in keys if k in guadalupe.pulse_library()]
    return guadalupe.pulse_library().subset(keys)


def _delta_ratio(waveform):
    """Paper-model delta compression over both channels (sign-magnitude)."""
    i_codes, q_codes = waveform.to_fixed_point()
    encoded = [
        delta_compress(c.astype(np.int64)) for c in (i_codes, q_codes)
    ]
    total_old = sum(e.original_bits for e in encoded)
    total_new = sum(e.encoded_bits for e in encoded)
    return total_old / total_new


def test_fig07a_per_waveform_ratios(benchmark, record_table, guadalupe):
    def experiment():
        picks = [
            ("sx", (2,)),
            ("sx", (3,)),
            ("sx", (5,)),
            ("sx", (8,)),
            ("measure", (0,)),
        ]
        rows = []
        for gate, qubits in picks:
            waveform = guadalupe.pulse_library().waveform(gate, qubits)
            rows.append(
                [
                    waveform.name,
                    f"{_delta_ratio(waveform):.2f}",
                    f"{compress_waveform(waveform, variant='DCT-N').compression_ratio_variable:.1f}",
                    f"{compress_waveform(waveform, 16, 'DCT-W').compression_ratio_variable:.2f}",
                    f"{compress_waveform(waveform, 16, 'int-DCT-W').compression_ratio_variable:.2f}",
                ]
            )
        return rows

    rows = once(benchmark, experiment)
    record_table(
        "Fig 7(a): per-waveform compression ratio (WS=16)",
        ["waveform", "delta", "DCT-N", "DCT-W", "int-DCT-W"],
        rows,
        note="paper: delta ~1-2x (zero crossings hurt), DCT variants 4-100x",
    )


def test_fig07b_overall_qft4_ratio(benchmark, record_table, guadalupe):
    def experiment():
        library = _qft4_library(guadalupe)
        rows = []
        delta_old = delta_new = 0
        for waveform in library:
            i_codes, q_codes = waveform.to_fixed_point()
            for codes in (i_codes, q_codes):
                encoded = delta_compress(codes.astype(np.int64))
                delta_old += encoded.original_bits
                delta_new += encoded.encoded_bits
        rows.append(["delta", "-", f"{delta_old / delta_new:.2f}", "1.9"])
        dctn = CompaqtCompiler(variant="DCT-N").compile_library(library)
        rows.append(["DCT-N", "-", f"{dctn.overall_ratio_variable:.1f}", "126.2"])
        for variant in ("DCT-W", "int-DCT-W"):
            for ws, max_k, paper in (
                (8, 1, "4.0"),
                (16, 2, "7.8" if variant == "DCT-W" else "8.0"),
            ):
                compiled = CompaqtCompiler(
                    window_size=ws, variant=variant, max_coefficients=max_k
                ).compile_library(library)
                rows.append(
                    [
                        variant,
                        f"WS={ws}",
                        f"{compiled.overall_ratio_variable:.2f}",
                        paper,
                    ]
                )
        return rows

    rows = once(benchmark, experiment)
    record_table(
        "Fig 7(b): overall compression of the qft-4 inventory",
        ["scheme", "window", "R (ours)", "R (paper)"],
        rows,
        note="windowed schemes capped at WS / (k+1) by the RLE word",
    )


def test_fig07c_mse(benchmark, record_table, guadalupe):
    def experiment():
        library = _qft4_library(guadalupe)
        rows = []
        for variant in ("DCT-N", "DCT-W", "int-DCT-W"):
            for ws in (8, 16):
                if variant == "DCT-N" and ws == 8:
                    continue
                compiled = CompaqtCompiler(
                    window_size=ws, variant=variant
                ).compile_library(library)
                label = "full" if variant == "DCT-N" else f"WS={ws}"
                rows.append([variant, label, f"{compiled.mean_mse:.2e}"])
        return rows

    rows = once(benchmark, experiment)
    record_table(
        "Fig 7(c): mean MSE over qft-4 waveforms",
        ["variant", "window", "MSE (ours)"],
        rows,
        note="paper band: 1e-7 .. 5e-6; int-DCT-W highest (integer rounding)",
    )
