"""Fig 17: surface-code concurrency and logical qubits per controller.

(a) peak concurrent operations in one d=3 syndrome cycle -- >80% of the
    patch is driven at once;
(b) logical qubits a QICK-class RFSoC supports: ~5x more with WS=16.
"""

from conftest import once
from repro.core import logical_qubits_supported
from repro.qec import (
    peak_concurrent_fraction,
    rotated_surface_code,
    syndrome_schedule,
    unrotated_surface_code,
)


def test_fig17a_syndrome_concurrency(benchmark, record_table):
    def experiment():
        rows = []
        for patch in (rotated_surface_code(3), unrotated_surface_code(3)):
            schedule = syndrome_schedule(patch)
            fraction = peak_concurrent_fraction(patch)
            assert fraction > 0.8  # the paper's ">80% driven concurrently"
            rows.append(
                [
                    patch.name,
                    patch.n_qubits,
                    schedule.peak_concurrent_gates,
                    schedule.peak_concurrent_streams,
                    f"{fraction * 100:.0f}%",
                ]
            )
        return rows

    rows = once(benchmark, experiment)
    record_table(
        "Fig 17(a): peak concurrency in one d=3 syndrome cycle",
        ["patch", "qubits", "peak gates", "peak driven qubits", "fraction"],
        rows,
    )


def test_fig17b_logical_qubits(benchmark, record_table):
    def experiment():
        rows = []
        for label, ws in (("uncompressed", 0), ("WS=8", 8), ("WS=16", 16)):
            rows.append(
                [
                    label,
                    logical_qubits_supported(17, ws),
                    logical_qubits_supported(25, ws),
                ]
            )
        gain = logical_qubits_supported(17, 16) / logical_qubits_supported(17, 0)
        assert gain >= 5
        return rows

    rows = once(benchmark, experiment)
    record_table(
        "Fig 17(b): logical qubits per RFSoC controller",
        ["design", "surface-17", "surface-25"],
        rows,
        note="paper: COMPAQT controls 5x more logical qubits",
    )
