"""Table V: qubits supported per controller, normalized and absolute.

The BRAM arithmetic: the baseline interleaves ``clock_ratio`` BRAMs per
stream; COMPAQT needs ``ceil(ratio/WS) * 3`` -- verified against the
cycle-level pipeline's actual bank usage, not just the formula.
"""

from conftest import once
from repro.core import qubit_gain, qubits_supported
from repro.core.controller import QubitController
from repro.devices import ibm_device


def test_table05_qubit_scaling(benchmark, record_table):
    def experiment():
        rows = [
            ["uncompressed", "1.00", "1", qubits_supported(0), "36"],
        ]
        for ws, paper_norm, paper_qubits in ((8, "2.66", "95"), (16, "5.33", "191")):
            gain = qubit_gain(ws)
            rows.append(
                [
                    f"int-DCT-W WS={ws}",
                    f"{gain:.2f}",
                    paper_norm,
                    qubits_supported(ws),
                    paper_qubits,
                ]
            )
        # Cross-check the formula against the hardware model's banks.
        controller = QubitController(ibm_device("bogota"))
        assert controller.brams_per_stream == 3
        assert qubit_gain(16) == 16 / controller.brams_per_stream
        return rows

    rows = once(benchmark, experiment)
    record_table(
        "Table V: concurrent qubits per QICK-class controller",
        ["design", "gain (ours)", "gain (paper)", "qubits (ours)", "qubits (paper)"],
        rows,
    )
