"""Table VII: min/max/average compression ratio on five IBM machines.

int-DCT-W at WS=16 over each machine's full pulse library.  The paper's
floor of 5.33 is the short SX pulse; long flat-top CR/readout pulses
reach ~8x; averages land in the mid-6s.
"""

from conftest import once
from repro.core import CompaqtCompiler
from repro.devices import ibm_device


def test_table07_machine_ratios(benchmark, record_table):
    paper = {
        "toronto": (5.33, 8.11, 6.49),
        "montreal": (5.33, 8.02, 6.45),
        "mumbai": (5.33, 8.05, 6.47),
        "guadalupe": (5.33, 8.02, 6.48),
        "lima": (5.33, 7.92, 6.33),
    }

    def experiment():
        rows = []
        compiler = CompaqtCompiler(window_size=16)
        for machine, (p_min, p_max, p_avg) in paper.items():
            compiled = compiler.compile_library(ibm_device(machine).pulse_library())
            ratios = [r.compression_ratio_variable for _k, r in compiled]
            ours = (min(ratios), max(ratios), sum(ratios) / len(ratios))
            rows.append(
                [
                    machine,
                    f"{ours[0]:.2f}",
                    f"{ours[1]:.2f}",
                    f"{ours[2]:.2f}",
                    f"{p_min} / {p_max} / {p_avg}",
                ]
            )
            assert abs(ours[0] - p_min) < 0.8
            assert abs(ours[1] - p_max) < 1.2
            assert abs(ours[2] - p_avg) < 0.8
        return rows

    rows = once(benchmark, experiment)
    record_table(
        "Table VII: compression ratios with int-DCT-W (WS=16)",
        ["machine", "min (ours)", "max (ours)", "avg (ours)", "paper min/max/avg"],
        rows,
    )
