"""Table IV: hardware operations of the IDCT engine.

DCT-W uses Loeffler's multiplier-based design (published counts);
int-DCT-W replaces every multiplier with CSD shift-add networks.  Our
adder/shifter counts come from the actual partial-butterfly dataflow of
our engine with greedy common-subexpression sharing -- a generic CSE
lands somewhat above the hand-optimized designs the paper cites [68],
and the bench prints both.
"""

from conftest import once
from repro.transforms import idct_op_counts


def test_table04_idct_op_counts(benchmark, record_table):
    paper = {
        ("DCT-W", 8): (11, 29, 0),
        ("int-DCT-W", 8): (0, 50, 26),
        ("DCT-W", 16): (26, 81, 0),
        ("int-DCT-W", 16): (0, 186, 128),
    }

    def experiment():
        rows = []
        for (variant, ws), (p_mult, p_add, p_shift) in paper.items():
            ops = idct_op_counts(ws, variant)
            rows.append(
                [
                    variant,
                    ws,
                    ops.multipliers,
                    ops.adders,
                    ops.shifters,
                    f"{p_mult}/{p_add}/{p_shift}",
                ]
            )
            if variant == "int-DCT-W":
                assert ops.multipliers == 0  # the multiplierless claim
                assert ops.adders <= 2.0 * p_add  # within 2x of hand-optimized
        return rows

    rows = once(benchmark, experiment)
    record_table(
        "Table IV: IDCT engine operations",
        ["variant", "WS", "multipliers", "adders", "shifters", "paper (m/a/s)"],
        rows,
        note="int-DCT-W: zero multipliers; counts from our CSD/CSE dataflow",
    )
