"""Table IX: compressibility of complex multi-qubit and fluxonium pulses.

iToffoli (smooth simultaneous-CR flat-top) compresses hardest; the
machine-learned Toffoli/CCZ pulses have more spectral content and land
in the mid-5s; fluxonium trajectory-optimized single-qubit pulses reach
~7x.  All with int-DCT-W at WS=16.
"""

import numpy as np

from conftest import once
from repro.compression import compress_waveform
from repro.devices import complex_gate_library, fluxonium_device


def test_table09_complex_pulses(benchmark, record_table):
    paper = {"itoffoli": 8.32, "toffoli": 5.31, "ccz": 5.59}

    def experiment():
        rows = []
        for waveform in complex_gate_library():
            result = compress_waveform(waveform, window_size=16)
            ours = result.compression_ratio_variable
            rows.append(
                [
                    "Transmon",
                    waveform.gate,
                    waveform.n_samples,
                    f"{ours:.2f}",
                    paper[waveform.gate],
                ]
            )
            assert abs(ours - paper[waveform.gate]) < 2.0
        fluxonium = fluxonium_device(5)
        ratios = [
            compress_waveform(w, window_size=16).compression_ratio_variable
            for w in fluxonium.pulse_library()
        ]
        rows.append(
            [
                "Fluxonium",
                "X, X/2, Z/2, Y/2",
                160,
                f"{np.mean(ratios):.2f}",
                7.2,
            ]
        )
        assert abs(np.mean(ratios) - 7.2) < 2.0
        # ordering claim: smooth flat-top beats learned pulses
        itoffoli = rows[0][3]
        assert float(itoffoli) > float(rows[1][3])
        return rows

    rows = once(benchmark, experiment)
    record_table(
        "Table IX: complex gate pulse compression (int-DCT-W, WS=16)",
        ["device", "gate", "samples", "R (ours)", "R (paper)"],
        rows,
    )
