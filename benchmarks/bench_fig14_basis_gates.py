"""Fig 14: per-qubit basis-gate compression ratios on Guadalupe.

int-DCT-W at WS=16: SX/X around the 5.33 floor, CX (averaged over each
qubit's directed pairs) near 7-8x, overall average >5x per qubit.
"""

import numpy as np

from conftest import once


def test_fig14_per_qubit_ratios(benchmark, record_table, guadalupe_compiled_ws16):
    def experiment():
        compiled = guadalupe_compiled_ws16
        rows = []
        all_means = []
        for qubit in range(16):
            sx = compiled.qubit_gate_ratio("sx", qubit)
            x = compiled.qubit_gate_ratio("x", qubit)
            cx = compiled.qubit_gate_ratio("cx", qubit)
            mean = np.mean([sx, x, cx])
            all_means.append(mean)
            rows.append(
                [qubit, f"{sx:.2f}", f"{x:.2f}", f"{cx:.2f}", f"{mean:.2f}"]
            )
        assert min(all_means) > 5.0  # paper: >5x average per qubit
        rows.append(["avg", "-", "-", "-", f"{np.mean(all_means):.2f}"])
        return rows

    rows = once(benchmark, experiment)
    record_table(
        "Fig 14: basis-gate compression ratio per qubit (int-DCT-W, WS=16)",
        ["qubit", "SX", "X", "CX (avg)", "mean"],
        rows,
        note="paper: every qubit averages >5x; SX is the 5.33 floor",
    )
