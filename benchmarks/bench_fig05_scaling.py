"""Fig 5: waveform-memory capacity/bandwidth scaling and its consequence.

(a) capacity grows linearly (7.56 MB RFSoC line crossed near 200 IBM
    qubits); (b) bandwidth grows linearly (866 GB/s line crossed before
    40); (c) peak vs average bandwidth for qaoa-40 / surface-25 /
    surface-81; (d) capacity-limited vs bandwidth-limited qubit counts.
"""

import numpy as np

from conftest import once
from repro.analysis import (
    GOOGLE_PARAMS,
    IBM_PARAMS,
    bandwidth_curve,
    capacity_curve,
    memory_capacity_per_qubit,
)
from repro.circuits import qaoa_circuit, schedule_circuit, transpile
from repro.core import RfsocModel
from repro.devices import heavy_hex_rows
from repro.qec import syndrome_schedule, unrotated_surface_code


def test_fig05a_capacity_scaling(benchmark, record_table):
    def experiment():
        rows = []
        model = RfsocModel()
        for params in (IBM_PARAMS, GOOGLE_PARAMS):
            qubits, capacity = capacity_curve(params, 200)
            crossing = (
                int(np.argmax(capacity > model.capacity_bytes))
                if capacity[-1] > model.capacity_bytes
                else ">200"
            )
            rows.append(
                [
                    params.name,
                    f"{capacity[100] / 1e6:.2f}",
                    f"{capacity[200] / 1e6:.2f}",
                    crossing,
                ]
            )
        return rows

    rows = once(benchmark, experiment)
    record_table(
        "Fig 5(a): required capacity (MB) vs qubits",
        ["vendor", "at 100 qubits", "at 200 qubits", "crosses 7.56MB at"],
        rows,
        note="paper: IBM crosses the RFSoC capacity line near 200 qubits",
    )


def test_fig05b_bandwidth_scaling(benchmark, record_table):
    def experiment():
        model = RfsocModel()
        qubits, bandwidth = bandwidth_curve(IBM_PARAMS, 200)
        crossing = int(np.argmax(bandwidth > model.internal_bandwidth_bytes))
        return [
            ["IBM stream BW/qubit (GB/s)", f"{bandwidth[1] / 1e9:.2f}"],
            ["100 qubits need (TB/s)", f"{bandwidth[100] / 1e12:.2f}"],
            ["RFSoC max internal BW (GB/s)", f"{model.internal_bandwidth_bytes / 1e9:.0f}"],
            ["RFSoC BW exhausted at (qubits)", crossing],
        ]

    rows = once(benchmark, experiment)
    record_table(
        "Fig 5(b): required bandwidth vs qubits",
        ["quantity", "value"],
        rows,
        note="paper: >2 TB/s for ~100 concurrent qubits; RFSoC line 866 GB/s",
    )


def test_fig05c_benchmark_bandwidth(benchmark, record_table):
    def experiment():
        rows = []
        # qaoa-40 routed onto a 65-qubit heavy-hex lattice.
        qaoa = transpile(qaoa_circuit(40, seed=4, name="qaoa-40"), heavy_hex_rows(5, 11))
        schedule = schedule_circuit(qaoa)
        rows.append(
            [
                "qaoa-40",
                f"{schedule.peak_bandwidth_bytes() / 1e9:.0f}",
                f"{schedule.average_bandwidth_bytes() / 1e9:.0f}",
                "894 / 447",
            ]
        )
        for distance, paper in [(3, "402 / 241"), (5, "1609 / 1453")]:
            patch = unrotated_surface_code(distance)
            schedule = syndrome_schedule(patch)
            rows.append(
                [
                    patch.name,
                    f"{schedule.peak_bandwidth_bytes() / 1e9:.0f}",
                    f"{schedule.average_bandwidth_bytes() / 1e9:.0f}",
                    paper,
                ]
            )
        return rows

    rows = once(benchmark, experiment)
    record_table(
        "Fig 5(c): peak / average bandwidth per benchmark (GB/s)",
        ["benchmark", "peak (ours)", "average (ours)", "paper peak/avg"],
        rows,
        note="shape: QEC runs near peak continuously; NISQ peaks only at readout",
    )


def test_fig05d_bandwidth_wall(benchmark, record_table):
    def experiment():
        model = RfsocModel()
        per_qubit = memory_capacity_per_qubit(IBM_PARAMS, include_couplers=True)
        by_capacity = model.max_qubits_capacity(per_qubit)
        by_bandwidth = model.max_qubits_bandwidth()
        return [
            ["capacity-limited", by_capacity, ">200"],
            ["bandwidth-limited", by_bandwidth, "<40"],
            ["drop", f"{by_capacity / by_bandwidth:.1f}x", "5x"],
        ]

    rows = once(benchmark, experiment)
    record_table(
        "Fig 5(d): qubits an RFSoC supports under each constraint",
        ["constraint", "ours", "paper"],
        rows,
    )
