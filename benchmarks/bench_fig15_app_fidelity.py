"""Fig 15: application fidelity, normalized to the uncompressed baseline.

All nine Table VI benchmarks are transpiled to Guadalupe, run through
the Monte Carlo noisy simulator with the per-gate coherent error
unitaries extracted from the decompressed pulses, and scored with TVD
fidelity (normalized/polarization fidelity for the QAOA rows).

Configurations follow the paper's memory designs: WS=16 keeps up to 2
coefficients + codeword per window (R = 5.33 uniform); WS=8 keeps 1 +
codeword (R = 4.0) -- the aggressive per-window budget that causes the
paper's WS=8 fidelity dips via window-boundary distortion.
"""

from conftest import once
from repro.circuits import paper_benchmarks, transpile
from repro.core import CompaqtCompiler
from repro.quantum import (
    IBM_LIKE_NOISE,
    StatevectorSimulator,
    compression_error_map,
    normalized_fidelity,
    tvd_fidelity,
)

_SHOTS = 2048


def _fidelity(circuit, ideal, gate_errors, seed, qaoa):
    simulator = StatevectorSimulator(
        noise=IBM_LIKE_NOISE, gate_errors=gate_errors, seed=seed
    )
    measured = simulator.distribution(circuit, _SHOTS)
    if qaoa:
        return normalized_fidelity(ideal, measured, circuit.n_qubits)
    return tvd_fidelity(ideal, measured)


def test_fig15_normalized_fidelity(benchmark, record_table, guadalupe):
    def experiment():
        configs = {
            "WS=8": CompaqtCompiler(window_size=8, max_coefficients=1),
            "WS=16": CompaqtCompiler(window_size=16, max_coefficients=2),
        }
        error_maps = {
            label: compression_error_map(
                guadalupe, compiler.compile_library(guadalupe.pulse_library())
            )
            for label, compiler in configs.items()
        }
        rows = []
        for circuit in paper_benchmarks():
            routed = transpile(circuit, guadalupe.topology)
            # score in the logical distribution space of measured qubits
            ideal = StatevectorSimulator().ideal_distribution(routed)
            qaoa = circuit.name.startswith("qaoa")
            seed = abs(hash(circuit.name)) % 100000
            base = _fidelity(routed, ideal, None, seed, qaoa)
            row = [circuit.name, routed.cx_count, f"{base:.3f}"]
            for label in ("WS=8", "WS=16"):
                fid = _fidelity(routed, ideal, error_maps[label], seed, qaoa)
                row.append(f"{fid / base:.3f}" if base > 0 else "n/a")
            rows.append(row)
        return rows

    rows = once(benchmark, experiment)
    record_table(
        "Fig 15: fidelity normalized to the uncompressed baseline",
        ["benchmark", "CX (routed)", "baseline F", "WS=8 norm", "WS=16 norm"],
        rows,
        note=(
            "paper: WS=16 ~1.0 everywhere; WS=8 loses up to a few % on "
            "gate-heavy circuits (boundary distortion)"
        ),
    )
