"""Fig 8: DCT energy compaction of a gate waveform.

The paper's illustrative figure: a DRAG input waveform and its DCT,
with RLE starting where coefficients fall below threshold.  We verify
the quantitative content: nearly all energy in the first few
coefficients, so the RLE tail covers almost the whole spectrum.
"""

import numpy as np

from conftest import once
from repro.transforms import dct, hard_threshold, trailing_zero_run


def test_fig08_energy_compaction(benchmark, record_table, guadalupe):
    def experiment():
        rows = []
        for gate, qubits in [("x", (0,)), ("sx", (1,)), ("measure", (0,))]:
            waveform = guadalupe.pulse_library().waveform(gate, qubits)
            spectrum = dct(waveform.i_channel)
            energy = np.cumsum(spectrum**2) / np.sum(spectrum**2)
            k99 = int(np.argmax(energy >= 0.99)) + 1
            k999999 = int(np.argmax(energy >= 0.999999)) + 1
            thresholded = hard_threshold(spectrum, 1e-3 * np.abs(spectrum).max())
            rle_tail = trailing_zero_run(thresholded)
            rows.append(
                [
                    waveform.name,
                    waveform.n_samples,
                    k99,
                    k999999,
                    f"{rle_tail / waveform.n_samples * 100:.1f}%",
                ]
            )
        return rows

    rows = once(benchmark, experiment)
    record_table(
        "Fig 8: DCT energy compaction (I channel)",
        ["waveform", "samples", "coeffs for 99%", "coeffs for 99.9999%", "RLE tail"],
        rows,
        note="smooth band-limited pulses -> energy in the first few coefficients",
    )
