"""Section IX (Discussion): why control pulses are compressible at all.

"Qubit control pulses have a tight footprint in the frequency domain.
Any spurious frequencies in the control pulse can introduce control
error, crosstalk, and leakage errors.  As a result ... control pulses
can be compressed and stored efficiently."

This bench closes that loop with the three-level transmon model:

1. band-limited (DRAG) pulses leak orders of magnitude less than
   spectrally dirty ones -- the physical constraint;
2. the same band-limitation gives them tiny DCT support -- the
   compressibility;
3. COMPAQT's decompressed pulses preserve the leakage level -- the
   safety of exploiting it.
"""

import numpy as np

from conftest import once
from repro.compression import compress_waveform
from repro.pulses import Waveform, drag
from repro.quantum import pulse_leakage
from repro.transforms import dct

_DT = 1 / 4.54e9


def _spectral_occupancy(waveform, energy=0.9999):
    spectrum = dct(waveform.i_channel) ** 2
    cumulative = np.cumsum(spectrum) / spectrum.sum()
    return int(np.argmax(cumulative >= energy)) + 1


def test_discussion_leakage_vs_compressibility(benchmark, record_table):
    def experiment():
        rng = np.random.default_rng(99)
        smooth = Waveform(
            "drag", drag(144, 0.18, 36, 2.2), dt=_DT, gate="x", qubits=(0,)
        )
        # A spectrally dirty pulse: same area, 2% wideband ripple.
        noisy_env = drag(144, 0.18, 36, 2.2) + 0.004 * (
            rng.standard_normal(144) + 1j * rng.standard_normal(144)
        )
        noisy_env *= 0.999 / max(1.0, np.abs(noisy_env).max())
        noisy = Waveform("dirty", noisy_env, dt=_DT, gate="x", qubits=(0,))

        from repro.core import fidelity_aware_compress

        rows = []
        for waveform in (smooth, noisy):
            leak = pulse_leakage(waveform)
            occupancy = _spectral_occupancy(waveform)
            # Equal-quality comparison: Algorithm 1 at the same MSE
            # target, so spectral dirt cannot be silently thresholded
            # away.
            ratio = fidelity_aware_compress(
                waveform, target_mse=1e-6, window_size=16
            ).compression_ratio_variable
            rows.append(
                [waveform.name, occupancy, f"{leak:.2e}", f"{ratio:.2f}"]
            )
        # the coupled claims: smooth pulse is both lower-leakage and
        # more compressible at equal reconstruction quality
        assert float(rows[0][2]) < float(rows[1][2])
        assert float(rows[0][3]) > float(rows[1][3])

        # and compression preserves the smooth pulse's leakage
        result = compress_waveform(smooth, window_size=16)
        leak_compressed = pulse_leakage(result.reconstructed)
        rows.append(
            ["drag (decompressed)", _spectral_occupancy(result.reconstructed),
             f"{leak_compressed:.2e}",
             f"{result.compression_ratio_variable:.2f}"]
        )
        assert leak_compressed < 1e-4
        return rows

    rows = once(benchmark, experiment)
    record_table(
        "Discussion: band-limitation couples leakage and compressibility",
        ["pulse", "DCT coeffs for 99.99% energy", "leakage", "R (WS=16)"],
        rows,
        note="smooth = low-leakage = compressible; COMPAQT keeps all three",
    )
