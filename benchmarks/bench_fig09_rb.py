"""Fig 9 + Table III: two-qubit randomized benchmarking with compressed
pulses.

Fig 9 plots the RB decay with uncompressed vs int-DCT-W pulses on
Guadalupe; Table III tabulates RB fidelity for three machines and all
three DCT variants.  The experiment: coherent per-gate error unitaries
are extracted from the decompressed waveforms via pulse simulation and
injected into the RB sequences on top of the calibrated stochastic
noise floor.
"""

from conftest import once
from repro.core import CompaqtCompiler
from repro.devices import ibm_device
from repro.quantum import (
    RBConfig,
    gate_error_unitary,
    rb_errors_from_gate_errors,
    run_two_qubit_rb,
)

_LENGTHS = (1, 10, 25, 50, 75, 100)


def _compression_rb_errors(device, window_size, variant):
    library = device.pulse_library()
    compiled = CompaqtCompiler(
        window_size=window_size, variant=variant
    ).compile_library(
        library.subset([("sx", (0,)), ("sx", (1,)), ("cx", (0, 1))])
    )
    return rb_errors_from_gate_errors(
        gate_error_unitary(
            library.waveform("sx", (0,)), compiled.waveform("sx", (0,)), "sx"
        ),
        gate_error_unitary(
            library.waveform("sx", (1,)), compiled.waveform("sx", (1,)), "sx"
        ),
        gate_error_unitary(
            library.waveform("cx", (0, 1)), compiled.waveform("cx", (0, 1)), "cx"
        ),
    )


def test_fig09_rb_decay(benchmark, record_table, guadalupe):
    def experiment():
        config = RBConfig(lengths=_LENGTHS, n_sequences=30, seed=909)
        baseline = run_two_qubit_rb(config)
        errors = _compression_rb_errors(guadalupe, 16, "int-DCT-W")
        compressed = run_two_qubit_rb(config, errors)
        rows = [
            ["baseline", *(f"{s:.3f}" for s in baseline.survival),
             f"{baseline.fidelity:.3f}", f"{baseline.epc:.2e}"],
            ["int-DCT-W", *(f"{s:.3f}" for s in compressed.survival),
             f"{compressed.fidelity:.3f}", f"{compressed.epc:.2e}"],
        ]
        assert abs(baseline.fidelity - compressed.fidelity) < 0.01
        return rows

    rows = once(benchmark, experiment)
    record_table(
        "Fig 9: RB survival vs Clifford length (Guadalupe)",
        ["design", *(f"m={m}" for m in _LENGTHS), "fidelity", "EPC"],
        rows,
        note="paper: 0.978 baseline vs 0.975 compressed (EPC 1.65e-2 vs 1.84e-2)",
    )


def test_table03_rb_across_machines(benchmark, record_table):
    paper = {
        "bogota": "0.980 / 0.982 / 0.983 / 0.983",
        "guadalupe": "0.978 / 0.977 / 0.976 / 0.975",
        "hanoi": "0.987 / 0.989 / 0.986 / 0.988",
    }

    def experiment():
        rows = []
        for name in ("bogota", "guadalupe", "hanoi"):
            device = ibm_device(name)
            config = RBConfig(lengths=_LENGTHS, n_sequences=24, seed=hash(name) % 9999)
            fidelities = [run_two_qubit_rb(config).fidelity]
            for variant, ws in (("DCT-N", 16), ("DCT-W", 16), ("int-DCT-W", 16)):
                errors = _compression_rb_errors(device, ws, variant)
                fidelities.append(run_two_qubit_rb(config, errors).fidelity)
            rows.append(
                [name, *(f"{f:.4f}" for f in fidelities), paper[name]]
            )
            spread = max(fidelities) - min(fidelities)
            assert spread < 0.01  # compression is fidelity-neutral
        return rows

    rows = once(benchmark, experiment)
    record_table(
        "Table III: 2Q RB fidelity per machine and variant (WS=16)",
        ["machine", "baseline", "DCT-N", "DCT-W", "int-DCT-W", "paper (b/n/w/i)"],
        rows,
    )
