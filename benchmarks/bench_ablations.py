"""Ablation benches for the design choices DESIGN.md calls out.

Not paper figures -- these quantify the trade-offs behind COMPAQT's
design points:

- window-size sweep (8/16/32): compression vs resources vs clock;
- uniform vs variable memory packing;
- fidelity-aware vs fixed thresholding;
- RLE tail encoding vs adaptive plateau bypass;
- delta compression's sample-format sensitivity.
"""

import numpy as np

from conftest import once
from repro.compression import compress_waveform
from repro.core import CompaqtCompiler, adaptive_compress, qubit_gain
from repro.microarch import ClockModel, idct_resources
from repro.pulses import Waveform, gaussian_square
from repro.transforms import delta_compress


def test_ablation_window_size_sweep(benchmark, record_table, guadalupe):
    """WS=16 is the sweet spot: WS=8 halves the gain, WS=32 blows the
    LUT budget and the clock for <1.4x extra compression."""

    def experiment():
        clock = ClockModel()
        rows = []
        for ws in (8, 16, 32):
            compiled = CompaqtCompiler(window_size=ws).compile_library(
                guadalupe.pulse_library()
            )
            rows.append(
                [
                    ws,
                    f"{compiled.overall_ratio_variable:.2f}",
                    f"{qubit_gain(ws):.2f}",
                    idct_resources(ws).luts,
                    f"{clock.normalized_fmax(ws):.2f}",
                ]
            )
        return rows

    rows = once(benchmark, experiment)
    record_table(
        "Ablation: window size",
        ["WS", "library R", "qubit gain", "engine LUTs", "norm. fmax"],
        rows,
        note="WS=32 costs 3.4x the LUTs of WS=16 for diminishing R",
    )


def test_ablation_packing(benchmark, record_table, guadalupe_compiled_ws16):
    """Uniform packing trades ~25% capacity for deterministic banked
    fetches (Section V-A's 'sacrifices compressibility')."""

    def experiment():
        compiled = guadalupe_compiled_ws16
        uniform = compiled.overall_ratio
        variable = compiled.overall_ratio_variable
        assert variable >= uniform
        return [
            ["uniform (RFSoC)", f"{uniform:.2f}"],
            ["variable (ASIC)", f"{variable:.2f}"],
            ["capacity sacrificed", f"{(1 - uniform / variable) * 100:.1f}%"],
        ]

    rows = once(benchmark, experiment)
    record_table(
        "Ablation: memory packing",
        ["packing", "library R"],
        rows,
    )


def test_ablation_fidelity_aware_threshold(benchmark, record_table, guadalupe):
    """Algorithm 1 vs a fixed threshold: same compression regime, but
    the per-pulse search bounds worst-case MSE."""

    def experiment():
        library = guadalupe.pulse_library()
        fixed = CompaqtCompiler(window_size=16, threshold=128).compile_library(library)
        aware = CompaqtCompiler(
            window_size=16, fidelity_aware=True, target_mse=1e-6
        ).compile_library(library)
        assert aware.max_mse <= 1e-6
        return [
            ["fixed threshold=128", f"{fixed.overall_ratio_variable:.2f}",
             f"{fixed.mean_mse:.1e}", f"{fixed.max_mse:.1e}"],
            ["fidelity-aware (eps=1e-6)", f"{aware.overall_ratio_variable:.2f}",
             f"{aware.mean_mse:.1e}", f"{aware.max_mse:.1e}"],
        ]

    rows = once(benchmark, experiment)
    record_table(
        "Ablation: thresholding policy",
        ["policy", "library R", "mean MSE", "max MSE"],
        rows,
        note="Algorithm 1 caps the tail of the MSE distribution",
    )


def test_ablation_adaptive_vs_plain(benchmark, record_table):
    """Plateau bypass on flat-tops: storage and engine work drop ~3x."""

    def experiment():
        n = 1360
        waveform = Waveform(
            "cr", gaussian_square(n, 0.3, 64.0, n - 256), dt=1 / 4.54e9,
            gate="cx", qubits=(0, 1),
        )
        plain = compress_waveform(waveform, window_size=16)
        adaptive = adaptive_compress(waveform, window_size=16)
        return [
            ["plain int-DCT-W", plain.compressed.stored_words("uniform"),
             n // 16, "0%"],
            ["adaptive", adaptive.stored_words, adaptive.idct_windows,
             f"{adaptive.bypass_fraction * 100:.0f}%"],
        ]

    rows = once(benchmark, experiment)
    record_table(
        "Ablation: adaptive plateau bypass (1360-sample CR pulse)",
        ["scheme", "stored words/chan", "IDCT windows", "bypass"],
        rows,
    )


def test_ablation_overlapping_windows(benchmark, record_table, guadalupe):
    """Section VII-B's proposed fix for WS=8 boundary distortion:
    50%-overlapping windows with crossfade synthesis."""

    def experiment():
        from repro.compression import compress_waveform_overlapping

        rows = []
        for gate, qubits in [("sx", (0,)), ("x", (3,)), ("cx", (0, 1))]:
            waveform = guadalupe.pulse_library().waveform(gate, qubits)
            plain = compress_waveform(waveform, window_size=8, max_coefficients=1)
            overlap = compress_waveform_overlapping(
                waveform, window_size=8, max_coefficients=1
            )
            rows.append(
                [
                    waveform.name,
                    f"{plain.mse:.1e}",
                    f"{overlap.mse:.1e}",
                    f"{plain.mse / overlap.mse:.0f}x",
                    f"{plain.compression_ratio_variable:.2f}",
                    f"{overlap.compression_ratio:.2f}",
                ]
            )
            assert overlap.mse < plain.mse
        return rows

    rows = once(benchmark, experiment)
    record_table(
        "Ablation: overlapping windows at WS=8",
        ["waveform", "plain MSE", "overlap MSE", "MSE gain", "plain R", "overlap R"],
        rows,
        note="boundary distortion drops ~10x for ~1.5-2x storage",
    )


def test_ablation_delta_sample_format(benchmark, record_table, guadalupe):
    """The paper's delta-compression failure is a sample-format artifact:
    two's-complement deltas survive zero crossings."""

    def experiment():
        waveform = guadalupe.pulse_library().waveform("sx", (0,))
        _i, q_codes = waveform.to_fixed_point()
        q_codes = q_codes.astype(np.int64)  # the zero-crossing channel
        sm = delta_compress(q_codes, representation="sign-magnitude")
        tc = delta_compress(q_codes, representation="twos-complement")
        assert tc.compression_ratio > sm.compression_ratio
        return [
            ["sign-magnitude (paper)", f"{sm.compression_ratio:.2f}", sm.delta_bits],
            ["twos-complement", f"{tc.compression_ratio:.2f}", tc.delta_bits],
        ]

    rows = once(benchmark, experiment)
    record_table(
        "Ablation: delta compression vs sample format (SX quadrature)",
        ["format", "R", "delta bits"],
        rows,
        note="even rescued, delta lacks DCT's bandwidth expansion property",
    )
