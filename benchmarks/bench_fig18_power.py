"""Fig 18: cryogenic controller power with compressed waveform memory.

Destiny/CACTI-style SRAM model + per-op IDCT energy: COMPAQT shrinks
the SRAM and reads it R-times less often; the multiplierless IDCT adds
far less power than the memory saves.
"""

from conftest import once
from repro.microarch import CryoControllerPower


def test_fig18_controller_power(benchmark, record_table):
    def experiment():
        model = CryoControllerPower()
        baseline = model.uncompressed()
        rows = [
            [
                "uncompressed",
                f"{baseline.dac_mw:.1f}",
                f"{baseline.memory_mw:.2f}",
                "0.00",
                f"{baseline.total_mw:.2f}",
                "1.0x",
            ]
        ]
        for ws, ratio in ((8, 8 / 3), (16, 16 / 3)):
            power = model.compaqt(compression_ratio=ratio, window_size=ws)
            rows.append(
                [
                    f"COMPAQT WS={ws}",
                    f"{power.dac_mw:.1f}",
                    f"{power.memory_mw:.2f}",
                    f"{power.idct_mw:.2f}",
                    f"{power.total_mw:.2f}",
                    f"{baseline.total_mw / power.total_mw:.2f}x",
                ]
            )
        ws16 = model.compaqt(compression_ratio=16 / 3, window_size=16)
        assert baseline.total_mw / ws16.total_mw > 2.5  # the paper's claim
        assert baseline.memory_mw / ws16.memory_mw > 3.0
        assert ws16.idct_mw < baseline.memory_mw - ws16.memory_mw
        return rows

    rows = once(benchmark, experiment)
    record_table(
        "Fig 18: cryo controller power per qubit slice (mW)",
        ["design", "DAC", "memory", "IDCT", "total", "reduction"],
        rows,
        note="paper: >2.5x total reduction at WS=16; memory power >3x lower",
    )
