"""Fig 20: software cost of compressing a waveform at compile time.

This bench uses real wall-clock timing (pytest-benchmark statistics):
the average per-waveform int-DCT-W compression time across three
machine libraries.  The paper lands around 0.1-0.2 s per waveform in
unoptimized Python; the point is that recompression happens once per
calibration cycle (hours), so the overhead is negligible either way.
"""

import pytest

from repro.core import CompaqtCompiler
from repro.devices import ibm_device


@pytest.mark.parametrize("machine", ["bogota", "guadalupe", "hanoi"])
@pytest.mark.parametrize("window_size", [8, 16])
def test_fig20_compression_latency(benchmark, record_table, machine, window_size):
    device = ibm_device(machine)
    library = device.pulse_library()
    compiler = CompaqtCompiler(window_size=window_size)

    compiled = benchmark(compiler.compile_library, library)

    per_waveform = benchmark.stats["mean"] / len(library)
    record_table(
        f"Fig 20: compression time ({machine}, WS={window_size})",
        ["machine", "WS", "waveforms", "library time (s)", "per waveform (s)"],
        [
            [
                machine,
                window_size,
                len(library),
                f"{benchmark.stats['mean']:.3f}",
                f"{per_waveform:.4f}",
            ]
        ],
        note="paper: ~0.1-0.2 s per waveform; calibration cycles take hours",
    )
    # WS=8 caps near 4x (RLE covers at most 8 samples), WS=16 near 8x.
    assert compiled.overall_ratio_variable > window_size / 4
    assert per_waveform < 1.0
