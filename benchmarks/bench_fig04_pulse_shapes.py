"""Fig 4: per-qubit pi-pulse diversity on 27/65/127-qubit machines.

The paper plots every qubit's pi-pulse on Toronto, Brooklyn and
Washington to show that each device needs its own waveform.  We verify
the same on our synthetic machines: every pulse is distinct, with
realistic amplitude/DRAG scatter.
"""

import numpy as np

from conftest import once
from repro.devices import ibm_device


def test_fig04_pulse_diversity(benchmark, record_table):
    def experiment():
        rows = []
        for name, expected_qubits in [
            ("toronto", 27),
            ("brooklyn", 65),
            ("washington", 127),
        ]:
            device = ibm_device(name)
            library = device.pulse_library()
            pulses = [library.waveform("x", (q,)) for q in range(device.n_qubits)]
            amps = np.array([np.abs(p.samples).max() for p in pulses])
            betas = np.array(
                [device.qubit_calibration(q).x_beta for q in range(device.n_qubits)]
            )
            unique = len({p.samples.tobytes() for p in pulses})
            rows.append(
                [
                    name,
                    device.n_qubits,
                    unique,
                    f"{amps.mean():.3f} +/- {amps.std():.3f}",
                    f"{betas.mean():.2f} +/- {betas.std():.2f}",
                ]
            )
            assert device.n_qubits == expected_qubits
            assert unique == device.n_qubits  # every pi-pulse differs
        return rows

    rows = once(benchmark, experiment)
    record_table(
        "Fig 4: pi-pulse shapes across IBM machines",
        ["machine", "qubits", "unique pi-pulses", "amplitude", "DRAG beta"],
        rows,
        note="paper: every qubit has a distinct calibrated pulse; ours match",
    )
