"""Fig 19: adaptive decompression power on a 100 ns flat-top waveform.

The plateau streams from a single repeat codeword with the memory and
IDCT engine idle; the duty factors fed to the power model come from the
*actual* adaptive compression of the pulse, not an assumption.
"""

from conftest import once
from repro.core import adaptive_compress
from repro.microarch import CryoControllerPower, DecompressionPipeline
from repro.pulses import Waveform, gaussian_square


def _flat_top_100ns():
    n = 448  # ~100 ns at 4.54 GS/s
    return Waveform(
        "flat_top_100ns",
        gaussian_square(n, 0.4, 16.0, n - 128),
        dt=1 / 4.54e9,
        gate="cx",
        qubits=(0, 1),
    )


def test_fig19_adaptive_power(benchmark, record_table):
    def experiment():
        waveform = _flat_top_100ns()
        adaptive = adaptive_compress(waveform, window_size=16)
        report = DecompressionPipeline(16).stream_adaptive(adaptive)
        duty = 1.0 - adaptive.bypass_fraction
        model = CryoControllerPower()
        baseline = model.uncompressed()
        plain16 = model.compaqt(16 / 3, 16)
        adaptive16 = model.compaqt(16 / 3, 16, memory_duty=duty, idct_duty=duty)
        plain8 = model.compaqt(8 / 3, 8)
        adaptive8 = model.compaqt(8 / 3, 8, memory_duty=duty, idct_duty=duty)
        rows = []
        for label, power in (
            ("uncompressed", baseline),
            ("COMPAQT WS=8", plain8),
            ("adaptive WS=8", adaptive8),
            ("COMPAQT WS=16", plain16),
            ("adaptive WS=16", adaptive16),
        ):
            rows.append(
                [
                    label,
                    f"{power.memory_mw:.2f}",
                    f"{power.idct_mw:.2f}",
                    f"{power.total_mw:.2f}",
                    f"{baseline.total_mw / power.total_mw:.2f}x",
                ]
            )
        assert adaptive.bypass_fraction > 0.5
        assert report.bypass_samples == adaptive.bypass_samples
        assert baseline.total_mw / adaptive16.total_mw > 3.5  # paper: ~4x
        return rows

    rows = once(benchmark, experiment)
    record_table(
        "Fig 19: adaptive decompression power (100 ns flat-top)",
        ["design", "memory mW", "IDCT mW", "total mW", "reduction"],
        rows,
        note="paper: 4x total reduction with the IDCT bypass",
    )
