"""Fig 11: histogram of stored words per compressed window.

The paper histograms 132 Guadalupe waveforms and finds every int-DCT-W
window needs at most 3 memory words (coefficients + RLE codeword) at
both WS=8 and WS=16 -- the empirical basis for the 3-bank uniform
memory.  Our synthetic Guadalupe library reproduces the cap.
"""

from conftest import once
from repro.analysis import total_windows, window_occupancy_histogram


def test_fig11_window_occupancy(
    benchmark, record_table, guadalupe_compiled_ws8, guadalupe_compiled_ws16
):
    def experiment():
        rows = []
        for label, compiled in (
            ("WS=8", guadalupe_compiled_ws8),
            ("WS=16", guadalupe_compiled_ws16),
        ):
            histogram = window_occupancy_histogram(compiled)
            assert max(histogram) <= 3  # the paper's design point
            windows = total_windows(compiled)
            rows.append(
                [
                    label,
                    windows,
                    histogram.get(1, 0),
                    histogram.get(2, 0),
                    histogram.get(3, 0),
                    max(histogram),
                ]
            )
        return rows

    rows = once(benchmark, experiment)
    record_table(
        "Fig 11: samples per compressed window (Guadalupe library)",
        ["window size", "windows", "1 word", "2 words", "3 words", "worst case"],
        rows,
        note="paper: worst case 3 words regardless of window size",
    )
