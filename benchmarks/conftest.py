"""Shared fixtures and result-recording helpers for the bench harness.

Every bench regenerates one of the paper's tables or figures.  Results
are printed (visible with ``pytest -s``) and also appended to
``benchmarks/results/<bench>.txt`` so the numbers survive pytest's
output capture; a ``<bench>.json`` sidecar carries the same tables in
machine-readable form (one list of ``table_payload`` dicts per bench).
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.analysis import render_table, table_payload

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture()
def record_table(request):
    """Return a callable that prints and persists one result table."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{request.node.name}.txt"
    json_path = path.with_suffix(".json")
    for stale in (path, json_path):
        if stale.exists():
            stale.unlink()
    tables = []

    def _record(title, headers, rows, note=None):
        rows = list(rows)
        text = render_table(title, headers, rows, note)
        print("\n" + text)
        with open(path, "a") as handle:
            handle.write(text + "\n\n")
        tables.append(table_payload(title, headers, rows, note))
        json_path.write_text(json.dumps(tables, indent=2) + "\n")
        return text

    return _record


@pytest.fixture(scope="session")
def guadalupe():
    from repro.devices import ibm_device

    return ibm_device("guadalupe")


@pytest.fixture(scope="session")
def guadalupe_compiled_ws16(guadalupe):
    from repro.core import CompaqtCompiler

    return CompaqtCompiler(window_size=16).compile_library(guadalupe.pulse_library())


@pytest.fixture(scope="session")
def guadalupe_compiled_ws8(guadalupe):
    from repro.core import CompaqtCompiler

    return CompaqtCompiler(window_size=8).compile_library(guadalupe.pulse_library())


def once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
