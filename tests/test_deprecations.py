"""Tests for the deprecation surfaces: shim modules and ``variant=``.

Two legacy spellings survive behind warnings: the
``repro.transforms.delta`` / ``repro.transforms.dictionary`` shim
modules (the baselines moved into the codecs package), and the
``variant=`` keyword everywhere ``codec=`` is the canonical name.  The
contract: each warns :class:`DeprecationWarning` exactly once per use
with an actionable message, behaves identically to the new spelling,
and passing both spellings at once is a hard error.
"""

import importlib
import sys
import warnings

import numpy as np
import pytest

from repro.errors import CompressionError
from repro.compression.batch import compress_batch
from repro.compression.codecs import resolve_codec_arg
from repro.compression.pipeline import compress_waveform
from repro.core import CompaqtCompiler, adaptive_compress, fidelity_aware_compress
from repro.devices import ibm_device
from repro.store.cache import CacheStats
from repro.store.server import ServerStats


@pytest.fixture(scope="module")
def waveform():
    return ibm_device("bogota").pulse_library().waveform("sx", (0,))


def _reimport(module_name):
    """Re-trigger a shim's module-level warning on an already-imported module."""
    sys.modules.pop(module_name, None)
    return importlib.import_module(module_name)


class TestTransformsShims:
    @pytest.mark.parametrize(
        "module_name, moved_to",
        [
            ("repro.transforms.delta", "repro.compression.codecs.delta"),
            ("repro.transforms.dictionary", "repro.compression.codecs.dictionary"),
        ],
    )
    def test_import_warns_and_reexports(self, module_name, moved_to):
        with pytest.warns(DeprecationWarning, match=f"{module_name} is deprecated"):
            shim = _reimport(module_name)
        canonical = importlib.import_module(moved_to)
        for name in shim.__all__:
            assert getattr(shim, name) is getattr(canonical, name), name

    def test_shim_message_names_the_new_home(self):
        with pytest.warns(DeprecationWarning, match="repro.compression.codecs.delta"):
            _reimport("repro.transforms.delta")


class TestVariantKeywordAlias:
    """``variant=`` works everywhere ``codec=`` does -- behind one warning."""

    def test_resolve_codec_arg_contract(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # codec= path must stay silent
            assert resolve_codec_arg("delta", None) == "delta"
            assert resolve_codec_arg(None, None, default="int-DCT-W") == "int-DCT-W"
        with pytest.warns(DeprecationWarning, match="variant= argument is deprecated"):
            assert resolve_codec_arg(None, "delta") == "delta"
        with pytest.raises(CompressionError, match="not both"):
            resolve_codec_arg("delta", "delta")

    @pytest.mark.parametrize(
        "call",
        [
            lambda wf, **kw: compress_waveform(wf, window_size=16, **kw),
            lambda wf, **kw: compress_batch([wf], window_size=16, **kw),
            lambda wf, **kw: CompaqtCompiler(window_size=16, **kw),
            lambda wf, **kw: adaptive_compress(wf, window_size=16, **kw),
            lambda wf, **kw: fidelity_aware_compress(wf, window_size=16, **kw),
        ],
        ids=[
            "compress_waveform",
            "compress_batch",
            "CompaqtCompiler",
            "adaptive_compress",
            "fidelity_aware_compress",
        ],
    )
    def test_entry_points_warn_on_variant_only(self, waveform, call):
        with pytest.warns(DeprecationWarning, match="variant= argument is deprecated"):
            call(waveform, variant="int-DCT-W")
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            call(waveform, codec="int-DCT-W")

    def test_both_spellings_at_once_is_an_error(self, waveform):
        with pytest.raises(CompressionError, match="not both"):
            compress_waveform(waveform, codec="delta", variant="delta")
        with pytest.raises(CompressionError, match="not both"):
            CompaqtCompiler(codec="delta", variant="delta")

    def test_variant_and_codec_produce_identical_results(self, waveform):
        via_codec = compress_waveform(waveform, window_size=16, codec="delta")
        with pytest.warns(DeprecationWarning):
            via_variant = compress_waveform(waveform, window_size=16, variant="delta")
        assert np.array_equal(
            via_codec.reconstructed.samples, via_variant.reconstructed.samples
        )
        assert via_codec.mse == via_variant.mse

    def test_compiler_records_resolved_codec_name(self):
        with pytest.warns(DeprecationWarning):
            compiler = CompaqtCompiler(variant="delta")
        assert compiler.codec.name == "delta"
        assert compiler.variant == "delta"  # legacy attribute still present


class TestStatsDictSurface:
    """`as_dict()` is the common stats surface; `to_dict` stays as an alias."""

    def test_cache_stats_aliases(self):
        stats = CacheStats(
            capacity=4, size=2, hits=10, misses=5, insertions=5, evictions=3
        )
        assert stats.as_dict() == stats.to_dict()
        assert stats.as_dict()["hit_rate"] == stats.hit_rate

    def test_server_stats_aliases(self):
        cache = CacheStats(
            capacity=4, size=2, hits=10, misses=5, insertions=5, evictions=3
        )
        stats = ServerStats(
            requests=7, batches=2, shard_fills=3, coalesced_fills=1, cache=cache
        )
        assert stats.as_dict() == stats.to_dict()
        assert stats.as_dict()["cache"] == cache.as_dict()

    def test_net_server_stats_has_as_dict(self):
        from repro.serve_net.server import NetServerStats

        net = NetServerStats(
            connections_accepted=1,
            connections_open=1,
            requests=2,
            fetches=1,
            fetches_ok=1,
            pulses_served=4,
            overloads=0,
            coalesced_keys=0,
            request_errors=0,
            protocol_errors=0,
            draining=False,
            serving=ServerStats(
                requests=1,
                batches=1,
                shard_fills=1,
                coalesced_fills=0,
                cache=CacheStats(
                    capacity=4, size=1, hits=0, misses=1, insertions=1, evictions=0
                ),
            ),
        )
        blob = net.as_dict()
        assert blob["serving"]["cache"]["insertions"] == 1


class TestStatsKeySetPins:
    """The stats dataclasses are frozen views over the metrics registry.

    Migrating their counters onto ``repro.obs`` must not change the
    dict surface: these pins freeze the exact key sets so a registry
    rename can never silently leak into ``as_dict()`` consumers
    (JSON-over-CQN1 STATS replies, the chaos harness, dashboards).
    """

    CACHE_KEYS = {
        "capacity",
        "size",
        "hits",
        "misses",
        "insertions",
        "evictions",
        "hit_rate",
    }
    SERVER_KEYS = {"requests", "batches", "shard_fills", "coalesced_fills", "cache"}
    POOL_KEYS = {
        "workers",
        "start_method",
        "shm_limit",
        "jobs_ok",
        "jobs_failed",
        "shm_jobs",
        "fallback_jobs",
        "worker_deaths",
        "respawns",
    }
    NET_KEYS = {
        "connections_accepted",
        "connections_open",
        "requests",
        "fetches",
        "fetches_ok",
        "pulses_served",
        "overloads",
        "coalesced_keys",
        "request_errors",
        "protocol_errors",
        "draining",
        "serving",
    }

    def _cache_stats(self):
        return CacheStats(
            capacity=4, size=2, hits=10, misses=5, insertions=5, evictions=3
        )

    def test_cache_stats_key_set(self):
        assert set(self._cache_stats().as_dict()) == self.CACHE_KEYS

    def test_server_stats_key_set(self):
        stats = ServerStats(
            requests=7,
            batches=2,
            shard_fills=3,
            coalesced_fills=1,
            cache=self._cache_stats(),
        )
        assert set(stats.as_dict()) == self.SERVER_KEYS

    def test_server_stats_with_pool_key_set(self):
        pool = {key: 0 for key in self.POOL_KEYS}
        pool.update(start_method="forkserver", workers=2, shm_limit=1 << 20)
        stats = ServerStats(
            requests=7,
            batches=2,
            shard_fills=3,
            coalesced_fills=1,
            cache=self._cache_stats(),
            pool=pool,
        )
        blob = stats.as_dict()
        assert set(blob) == self.SERVER_KEYS | {"pool"}
        assert set(blob["pool"]) == self.POOL_KEYS

    def test_net_server_stats_key_set(self):
        from repro.serve_net.server import NetServerStats

        net = NetServerStats(
            connections_accepted=0,
            connections_open=0,
            requests=0,
            fetches=0,
            fetches_ok=0,
            pulses_served=0,
            overloads=0,
            coalesced_keys=0,
            request_errors=0,
            protocol_errors=0,
            draining=False,
            serving=ServerStats(
                requests=0,
                batches=0,
                shard_fills=0,
                coalesced_fills=0,
                cache=CacheStats(
                    capacity=1, size=0, hits=0, misses=0, insertions=0, evictions=0
                ),
            ),
        )
        assert set(net.as_dict()) == self.NET_KEYS

    def test_live_registry_backed_stats_keep_the_pinned_keys(self, tmp_path):
        """A real PulseServer's stats (registry-backed) match the pins."""
        from repro.core import CompaqtCompiler
        from repro.store import PulseServer, save_store

        library = ibm_device("bogota").pulse_library()
        compiled = CompaqtCompiler(window_size=16).compile_library(library)
        store = save_store(compiled, tmp_path / "pin.cqs", n_shards=2)
        try:
            with PulseServer(store, cache_capacity=8) as server:
                server.fetch(*store.keys()[0])
                blob = server.stats().as_dict()
            assert set(blob) == self.SERVER_KEYS
            assert set(blob["cache"]) == self.CACHE_KEYS
        finally:
            store.close()
