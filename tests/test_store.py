"""Tests for the CQS1 sharded store layout, writer, and reader."""

import json

import numpy as np
import pytest

from repro.errors import CompressionError, ReproError, StoreError
from repro.compression.bitstream import (
    LibraryBitstream,
    LibraryEntry,
    parse_waveform,
    serialize_library,
    serialize_library_indexed,
    serialize_waveform,
)
from repro.core import CompaqtCompiler
from repro.devices import ibm_device
from repro.store import (
    MANIFEST_NAME,
    ShardedStore,
    open_store,
    save_store,
    shard_index,
)


@pytest.fixture(scope="module")
def compiled():
    library = ibm_device("bogota").pulse_library()
    return CompaqtCompiler(window_size=16).compile_library(library)


@pytest.fixture()
def store(compiled, tmp_path):
    return save_store(compiled, tmp_path / "bogota.cqs", n_shards=3)


def _container(compiled):
    entries = tuple(
        LibraryEntry(
            gate=gate,
            qubits=qubits,
            mse=result.mse,
            threshold=result.threshold,
            compressed=result.compressed,
        )
        for (gate, qubits), result in compiled
    )
    return LibraryBitstream(
        device_name=compiled.device_name,
        window_size=compiled.window_size,
        variant=compiled.variant,
        entries=entries,
    )


class TestRecordSpans:
    def test_indexed_serialization_matches_plain(self, compiled):
        container = _container(compiled)
        blob, spans = serialize_library_indexed(container)
        assert blob == serialize_library(container)
        assert len(spans) == len(container.entries)

    def test_spans_slice_to_standalone_records(self, compiled):
        container = _container(compiled)
        blob, spans = serialize_library_indexed(container)
        for entry, span in zip(container.entries, spans):
            record = blob[span.offset : span.end]
            assert record == serialize_waveform(entry.compressed)
            assert record.startswith(b"CQW1")
            assert parse_waveform(record) == entry.compressed
            assert (span.gate, span.qubits) == (entry.gate, entry.qubits)


class TestSaveAndOpen:
    def test_layout_on_disk(self, store, tmp_path):
        root = tmp_path / "bogota.cqs"
        manifest = json.loads((root / MANIFEST_NAME).read_text())
        assert manifest["magic"] == "CQS1"
        assert manifest["format_version"] == 1
        assert manifest["n_shards"] == 3
        assert len(manifest["shards"]) == 3
        for row in manifest["shards"]:
            shard_file = root / row["file"]
            assert shard_file.stat().st_size == row["n_bytes"]
            # every shard is a standalone CQL1 container
            assert shard_file.read_bytes().startswith(b"CQL1")

    def test_metadata_round_trips(self, store, compiled):
        assert store.device_name == compiled.device_name
        assert store.variant == compiled.variant
        assert store.window_size == compiled.window_size
        assert len(store) == len(compiled)
        assert set(store.keys()) == set(compiled.keys())

    def test_single_record_reads_are_bit_exact(self, store, compiled):
        for key in compiled.keys():
            assert store.read_record(*key) == compiled.result(*key).compressed

    def test_record_bytes_are_offset_indexed(self, store):
        key = store.keys()[0]
        info = store.record_info(*key)
        raw = store.read_record_bytes(*key)
        assert raw.startswith(b"CQW1")
        assert len(raw) == info.length
        shard_bytes = store.shard_path(info.shard).read_bytes()
        assert shard_bytes[info.offset : info.offset + info.length] == raw

    def test_entry_metrics_preserved(self, store, compiled):
        for key in compiled.keys():
            info = store.record_info(*key)
            result = compiled.result(*key)
            assert info.mse == result.mse
            assert info.threshold == result.threshold

    def test_sharding_is_stable_hash(self, store):
        for gate, qubits in store.keys():
            assert store.shard_of(gate, qubits) == shard_index(gate, qubits, 3)

    def test_read_many_orders_and_duplicates(self, store, compiled):
        keys = store.keys()
        requests = [keys[0], keys[5], keys[0], keys[-1]]
        records = store.read_many(requests)
        assert len(records) == 4
        for request, record in zip(requests, records):
            assert record == compiled.result(*request).compressed
        assert records[0] == records[2]

    def test_load_library_matches_monolithic_load(self, store, compiled):
        loaded = store.load_library()
        assert len(loaded) == len(compiled)
        for key in compiled.keys():
            twin = loaded.result(*key)
            original = compiled.result(*key)
            assert twin.compressed == original.compressed
            assert np.array_equal(
                twin.reconstructed.samples, original.reconstructed.samples
            )

    def test_empty_shards_are_legal(self, compiled, tmp_path):
        store = save_store(compiled, tmp_path / "wide.cqs", n_shards=41)
        assert store.n_shards == 41
        assert len(store) == len(compiled)
        for key in compiled.keys():
            assert store.read_record(*key) == compiled.result(*key).compressed

    def test_overwrite_with_fewer_shards_removes_stale_files(
        self, compiled, tmp_path
    ):
        root = tmp_path / "resharded.cqs"
        save_store(compiled, root, n_shards=8)
        store = save_store(compiled, root, n_shards=2)
        assert sorted(p.name for p in root.glob("shard-*.cql")) == [
            "shard-0000.cql",
            "shard-0001.cql",
        ]
        assert store.total_shard_bytes == sum(
            p.stat().st_size for p in root.glob("shard-*.cql")
        )
        for key in compiled.keys():
            assert store.read_record(*key) == compiled.result(*key).compressed

    def test_one_shard_store(self, compiled, tmp_path):
        store = save_store(compiled, tmp_path / "one.cqs", n_shards=1)
        assert store.shard_of(*store.keys()[0]) == 0
        assert store.load_library().overall_ratio == compiled.overall_ratio

    def test_compiler_facade(self, compiled, tmp_path):
        compiler = CompaqtCompiler(window_size=16)
        written = compiler.save_store(compiled, tmp_path / "f.cqs", n_shards=2)
        reopened = compiler.load_store(tmp_path / "f.cqs")
        assert isinstance(reopened, ShardedStore)
        assert set(reopened.keys()) == set(written.keys())


class TestValidation:
    def test_shard_index_validates(self):
        with pytest.raises(StoreError):
            shard_index("x", (0,), 0)

    def test_save_rejects_bad_shard_count(self, compiled, tmp_path):
        with pytest.raises(StoreError):
            save_store(compiled, tmp_path / "bad.cqs", n_shards=0)

    def test_open_missing_directory(self, tmp_path):
        with pytest.raises(StoreError, match="no CQS1 manifest"):
            open_store(tmp_path / "nothing.cqs")

    def test_open_corrupt_manifest(self, store, tmp_path):
        root = tmp_path / "bogota.cqs"
        (root / MANIFEST_NAME).write_text("{not json")
        with pytest.raises(StoreError, match="corrupt CQS1 manifest"):
            open_store(root)

    def test_open_bad_magic(self, store, tmp_path):
        root = tmp_path / "bogota.cqs"
        manifest = json.loads((root / MANIFEST_NAME).read_text())
        manifest["magic"] = "NOPE"
        (root / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(StoreError, match="bad magic"):
            open_store(root)

    def test_open_unsupported_version(self, store, tmp_path):
        root = tmp_path / "bogota.cqs"
        manifest = json.loads((root / MANIFEST_NAME).read_text())
        manifest["format_version"] = 99
        (root / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(StoreError, match="format version"):
            open_store(root)

    def test_open_malformed_shard_table(self, store, tmp_path):
        root = tmp_path / "bogota.cqs"
        original = (root / MANIFEST_NAME).read_text()
        for rows in (["x", "y", "z"], [{"n_bytes": 5}] * 3):
            manifest = json.loads(original)
            manifest["shards"] = rows
            (root / MANIFEST_NAME).write_text(json.dumps(manifest))
            with pytest.raises(StoreError, match="malformed shard table"):
                open_store(root)

    def test_open_malformed_entry_count(self, store, tmp_path):
        root = tmp_path / "bogota.cqs"
        manifest = json.loads((root / MANIFEST_NAME).read_text())
        manifest["n_entries"] = "lots"
        (root / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(StoreError, match="malformed CQS1 manifest"):
            open_store(root)

    def test_open_missing_shard_file(self, store, tmp_path):
        root = tmp_path / "bogota.cqs"
        (root / "shard-0001.cql").unlink()
        with pytest.raises(StoreError, match="missing shard file"):
            open_store(root)

    def test_open_detects_size_mismatch(self, store, tmp_path):
        root = tmp_path / "bogota.cqs"
        shard = root / "shard-0001.cql"
        shard.write_bytes(shard.read_bytes() + b"\x00")
        with pytest.raises(StoreError, match="bytes on disk"):
            open_store(root)

    def test_open_detects_span_overrun(self, store, tmp_path):
        root = tmp_path / "bogota.cqs"
        manifest = json.loads((root / MANIFEST_NAME).read_text())
        manifest["entries"][0]["offset"] = 10**9
        (root / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(StoreError, match="overruns shard"):
            open_store(root)

    def test_open_rejects_negative_offset(self, store, tmp_path):
        # A negative offset whose span still "fits" must not reach
        # handle.seek (OSError) or silently read the wrong bytes.
        root = tmp_path / "bogota.cqs"
        manifest = json.loads((root / MANIFEST_NAME).read_text())
        manifest["entries"][0]["offset"] = -5000
        (root / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(StoreError, match="overruns shard"):
            open_store(root)

    def test_unknown_pulse_lookup(self, store):
        with pytest.raises(StoreError, match="no pulse"):
            store.read_record("nope", (0,))

    def test_corrupt_record_bytes_rejected(self, store, tmp_path):
        root = tmp_path / "bogota.cqs"
        key = store.keys()[0]
        info = store.record_info(*key)
        shard = root / f"shard-{info.shard:04d}.cql"
        blob = bytearray(shard.read_bytes())
        blob[info.offset] ^= 0xFF  # smash the record magic in place
        shard.write_bytes(bytes(blob))
        reopened = open_store(root)  # sizes unchanged: open succeeds
        with pytest.raises(CompressionError):
            reopened.read_record(*key)

    def test_store_error_is_repro_error(self):
        assert issubclass(StoreError, ReproError)
