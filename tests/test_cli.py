"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_report_defaults(self):
        args = build_parser().parse_args(["report"])
        assert args.device == "guadalupe"
        assert args.window_size == 16
        assert args.variant == "int-DCT-W"

    def test_bad_window_size_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["report", "--window-size", "12"])

    def test_bench_defaults(self):
        args = build_parser().parse_args(["bench"])
        assert not args.quick
        assert args.devices is None
        assert args.window_size == 16
        assert args.repeats is None


class TestCommands:
    def test_devices_lists_catalog(self, capsys):
        assert main(["devices"]) == 0
        out = capsys.readouterr().out
        assert "ibm_bogota" in out
        assert "ibm_washington" in out

    def test_report_runs(self, capsys):
        assert main(["report", "--device", "bogota"]) == 0
        out = capsys.readouterr().out
        assert "overall" in out
        assert "worst window: 3 words" in out

    def test_report_fidelity_aware(self, capsys):
        assert main(["report", "--device", "bogota", "--fidelity-aware"]) == 0
        assert "fidelity-aware" in capsys.readouterr().out

    def test_scalability(self, capsys):
        assert main(["scalability"]) == 0
        out = capsys.readouterr().out
        assert "192" in out  # WS=16 qubits
        assert "5.33x" in out
