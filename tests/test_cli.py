"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_report_defaults(self):
        args = build_parser().parse_args(["report"])
        assert args.device == "guadalupe"
        assert args.window_size == 16
        assert args.codec == "int-DCT-W"

    def test_bad_window_size_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["report", "--window-size", "12"])

    def test_bench_defaults(self):
        args = build_parser().parse_args(["bench"])
        assert not args.quick
        assert args.devices is None
        assert args.window_size == 16
        assert args.repeats is None
        assert not args.scaling
        assert not args.check
        assert args.workers is None
        assert args.start_method is None
        assert args.shm_limit is None

    def test_bench_scaling_flags(self):
        args = build_parser().parse_args(
            [
                "bench", "--network", "--scaling", "--workers", "1,2",
                "--start-method", "spawn", "--shm-limit", "65536", "--check",
            ]
        )
        assert args.scaling and args.check
        assert args.workers == "1,2"
        assert args.start_method == "spawn"
        assert args.shm_limit == 65536

    def test_scaling_outside_network_is_an_error(self, capsys):
        assert main(["bench", "--scaling", "--quick"]) == 2
        assert "--network" in capsys.readouterr().out

    def test_serve_net_worker_flags(self):
        args = build_parser().parse_args(["serve-net", "some.cqs"])
        assert args.workers == 0  # decode processes: in-process default
        assert args.fill_threads == 4
        assert args.shm_limit is None

    def test_loadgen_retry_flags(self):
        args = build_parser().parse_args(["loadgen", "127.0.0.1:1"])
        assert args.retries == 0
        assert args.backoff == 0.05
        args = build_parser().parse_args(
            ["loadgen", "127.0.0.1:1", "--retries", "3", "--backoff", "0.01"]
        )
        assert (args.retries, args.backoff) == (3, 0.01)

    def test_chaos_decode_workers_flag(self):
        assert build_parser().parse_args(["chaos"]).decode_workers == 2
        args = build_parser().parse_args(["chaos", "--decode-workers", "0"])
        assert args.decode_workers == 0


class TestBenchCheckMode:
    def test_check_evaluates_gates_without_writing(
        self, tmp_path, monkeypatch, capsys
    ):
        monkeypatch.chdir(tmp_path)
        code = main(
            ["bench", "--devices", "bogota", "--codecs", "int-DCT-W", "--check"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "check mode" in out
        assert not (tmp_path / "BENCH_compression.json").exists()

    def test_explicit_output_still_writes_under_check(
        self, tmp_path, monkeypatch, capsys
    ):
        monkeypatch.chdir(tmp_path)
        # Nested directory: the writers must create parents (CI points
        # --output at an artifact dir that does not exist yet).
        target = tmp_path / "bench-out" / "out.json"
        code = main(
            [
                "bench", "--devices", "bogota", "--codecs", "int-DCT-W",
                "--check", "--output", str(target),
            ]
        )
        capsys.readouterr()
        assert code == 0
        assert target.is_file()
        assert not (tmp_path / "BENCH_compression.json").exists()


class TestCommands:
    def test_devices_lists_catalog(self, capsys):
        assert main(["devices"]) == 0
        out = capsys.readouterr().out
        assert "ibm_bogota" in out
        assert "ibm_washington" in out

    def test_report_runs(self, capsys):
        assert main(["report", "--device", "bogota"]) == 0
        out = capsys.readouterr().out
        assert "overall" in out
        assert "worst window: 3 words" in out

    def test_report_fidelity_aware(self, capsys):
        assert main(["report", "--device", "bogota", "--fidelity-aware"]) == 0
        assert "fidelity-aware" in capsys.readouterr().out

    def test_scalability(self, capsys):
        assert main(["scalability"]) == 0
        out = capsys.readouterr().out
        assert "192" in out  # WS=16 qubits
        assert "5.33x" in out


class TestPackCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["pack", "bogota"])
        assert args.device == "bogota"
        assert args.window_size == 16
        assert args.codec == "int-DCT-W"
        assert args.shards == 0
        assert args.output is None

    def test_variant_is_a_deprecated_codec_alias(self):
        with pytest.warns(DeprecationWarning, match="--variant is deprecated"):
            args = build_parser().parse_args(["pack", "bogota", "--variant", "delta"])
        assert args.codec == "delta"

    def test_codec_validated_against_registry(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["pack", "bogota", "--codec", "nope"])

    def test_pack_writes_verified_bitstream(self, tmp_path, capsys):
        out = tmp_path / "bogota.cqt"
        assert main(["pack", "bogota", "--output", str(out)]) == 0
        stdout = capsys.readouterr().out
        assert "round-trip verified" in stdout
        data = out.read_bytes()
        assert data.startswith(b"CQL1")

        from repro.core import CompaqtCompiler, CompressedPulseLibrary
        from repro.devices import ibm_device

        loaded = CompressedPulseLibrary.load(out)
        compiled = CompaqtCompiler(window_size=16).compile_library(
            ibm_device("bogota").pulse_library()
        )
        assert len(loaded) == len(compiled)
        for key in compiled.keys():
            assert loaded.result(*key).compressed == compiled.result(*key).compressed

    def test_pack_variant_option(self, tmp_path, capsys):
        out = tmp_path / "f.cqt"
        code = main(
            [
                "pack",
                "fluxonium-3",
                "--variant",
                "DCT-W",
                "--window-size",
                "8",
                "--output",
                str(out),
            ]
        )
        assert code == 0
        from repro.core import CompressedPulseLibrary

        loaded = CompressedPulseLibrary.load(out)
        assert loaded.variant == "DCT-W"
        assert loaded.window_size == 8

    def test_pack_prints_path_and_ratio_summary(self, tmp_path, capsys):
        out = tmp_path / "bogota.cqt"
        assert main(["pack", "bogota", "--output", str(out)]) == 0
        stdout = capsys.readouterr().out
        assert f"-> {out}" in stdout
        assert "R(var)=" in stdout
        assert "packed 23 waveforms" in stdout

    def test_pack_shards_writes_store(self, tmp_path, capsys):
        out = tmp_path / "bogota.cqs"
        code = main(
            ["pack", "bogota", "--shards", "3", "--codec", "delta",
             "--output", str(out)]
        )
        assert code == 0
        stdout = capsys.readouterr().out
        assert "3 shards" in stdout
        assert "round-trip verified" in stdout
        assert (out / "manifest.json").is_file()

        from repro.store import open_store

        store = open_store(out)
        assert store.n_shards == 3
        assert store.variant == "delta"
        assert len(store) == 23

    def test_pack_rejects_negative_shards(self, capsys):
        assert main(["pack", "bogota", "--shards", "-1"]) == 2


class TestServeCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["serve", "some.cqs"])
        assert args.store == "some.cqs"
        assert args.requests is None
        assert args.cache_size == 64
        assert args.workers == 4
        assert not args.no_verify

    def test_serve_synthetic_trace(self, tmp_path, capsys):
        out = tmp_path / "bogota.cqs"
        assert main(["pack", "bogota", "--shards", "2", "--output", str(out)]) == 0
        capsys.readouterr()
        code = main(
            ["serve", str(out), "--synthetic", "100", "--cache-size", "8"]
        )
        assert code == 0
        stdout = capsys.readouterr().out
        assert "served 100 requests" in stdout
        assert "bit-identity vs scalar decode: ok" in stdout
        # printed counters describe the trace replay only: the verify
        # pass (one fetch_batch over all 23 keys) must not leak in
        lines = stdout.splitlines()
        header = next(i for i, l in enumerate(lines) if l.startswith("requests"))
        assert lines[header + 2].split()[0] == "100"

    def test_serve_trace_file(self, tmp_path, capsys):
        out = tmp_path / "bogota.cqs"
        assert main(["pack", "bogota", "--shards", "2", "--output", str(out)]) == 0
        capsys.readouterr()

        from repro.store import open_store, synthetic_trace, write_trace

        store = open_store(out)
        trace_path = write_trace(
            synthetic_trace(store.keys(), 40, seed=2), tmp_path / "trace.json"
        )
        code = main(["serve", str(out), "--requests", str(trace_path)])
        assert code == 0
        stdout = capsys.readouterr().out
        assert "served 40 requests" in stdout
        assert "trace.json" in stdout
