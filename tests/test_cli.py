"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_report_defaults(self):
        args = build_parser().parse_args(["report"])
        assert args.device == "guadalupe"
        assert args.window_size == 16
        assert args.variant == "int-DCT-W"

    def test_bad_window_size_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["report", "--window-size", "12"])

    def test_bench_defaults(self):
        args = build_parser().parse_args(["bench"])
        assert not args.quick
        assert args.devices is None
        assert args.window_size == 16
        assert args.repeats is None


class TestCommands:
    def test_devices_lists_catalog(self, capsys):
        assert main(["devices"]) == 0
        out = capsys.readouterr().out
        assert "ibm_bogota" in out
        assert "ibm_washington" in out

    def test_report_runs(self, capsys):
        assert main(["report", "--device", "bogota"]) == 0
        out = capsys.readouterr().out
        assert "overall" in out
        assert "worst window: 3 words" in out

    def test_report_fidelity_aware(self, capsys):
        assert main(["report", "--device", "bogota", "--fidelity-aware"]) == 0
        assert "fidelity-aware" in capsys.readouterr().out

    def test_scalability(self, capsys):
        assert main(["scalability"]) == 0
        out = capsys.readouterr().out
        assert "192" in out  # WS=16 qubits
        assert "5.33x" in out


class TestPackCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["pack", "bogota"])
        assert args.device == "bogota"
        assert args.window_size == 16
        assert args.variant == "int-DCT-W"
        assert args.output is None

    def test_pack_writes_verified_bitstream(self, tmp_path, capsys):
        out = tmp_path / "bogota.cqt"
        assert main(["pack", "bogota", "--output", str(out)]) == 0
        stdout = capsys.readouterr().out
        assert "round-trip verified" in stdout
        data = out.read_bytes()
        assert data.startswith(b"CQL1")

        from repro.core import CompaqtCompiler, CompressedPulseLibrary
        from repro.devices import ibm_device

        loaded = CompressedPulseLibrary.load(out)
        compiled = CompaqtCompiler(window_size=16).compile_library(
            ibm_device("bogota").pulse_library()
        )
        assert len(loaded) == len(compiled)
        for key in compiled.keys():
            assert loaded.result(*key).compressed == compiled.result(*key).compressed

    def test_pack_variant_option(self, tmp_path, capsys):
        out = tmp_path / "f.cqt"
        code = main(
            [
                "pack",
                "fluxonium-3",
                "--variant",
                "DCT-W",
                "--window-size",
                "8",
                "--output",
                str(out),
            ]
        )
        assert code == 0
        from repro.core import CompressedPulseLibrary

        loaded = CompressedPulseLibrary.load(out)
        assert loaded.variant == "DCT-W"
        assert loaded.window_size == 8
