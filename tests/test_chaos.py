"""Tests for the fault-injection chaos/soak harness.

Two kinds of coverage: the harness machinery itself (deterministic
fault schedules, each fault kind surfacing as its typed error, the
invariant checker actually catching violations) and the end-to-end
soak (`run_chaos` / `repro chaos --quick`) staying green on the
current stack.
"""

import numpy as np
import pytest

from repro.chaos import (
    FAULT_KINDS,
    POOL_FAULT_KINDS,
    WRITE_FAULT_KINDS,
    ChaosReport,
    FaultPlan,
    FaultyStore,
    InvariantChecker,
    run_chaos,
)
from repro.cli import main
from repro.compression.pipeline import decompress_waveform
from repro.core import CompaqtCompiler
from repro.devices import ibm_device
from repro.errors import (
    ChaosError,
    CompressionError,
    ReproError,
    StoreError,
)
from repro.perf.serving_bench import run_serving_soak, soak_gates_ok
from repro.store import PulseServer, save_store
from repro.store.cache import CacheStats
from repro.store.hooks import preempt, preempt_hook, set_preempt_hook


@pytest.fixture(scope="module")
def compiled():
    library = ibm_device("bogota").pulse_library()
    return CompaqtCompiler(window_size=16).compile_library(library)


@pytest.fixture()
def store(compiled, tmp_path):
    return save_store(compiled, tmp_path / "chaos.cqs", n_shards=3)


@pytest.fixture()
def reference(store):
    return {
        key: decompress_waveform(store.read_record(*key)).samples
        for key in store.keys()
    }


class TestFaultPlan:
    def test_schedule_is_deterministic_and_periodic(self):
        plan = FaultPlan(seed=5, period=3, kinds=("truncate", "bitflip"))
        schedule = [plan.fault_for(t) for t in range(12)]
        assert schedule == [plan.fault_for(t) for t in range(12)]
        assert schedule == [
            None, None, "truncate",
            None, None, "bitflip",
            None, None, "truncate",
            None, None, "bitflip",
        ]

    def test_rng_streams_are_seeded_per_tick(self):
        plan = FaultPlan(seed=7)
        assert plan.rng_for(3).random() == plan.rng_for(3).random()
        assert plan.rng_for(3).random() != plan.rng_for(4).random()

    def test_validation(self):
        with pytest.raises(StoreError):
            FaultPlan(period=0)
        with pytest.raises(StoreError):
            FaultPlan(kinds=())
        with pytest.raises(StoreError):
            FaultPlan(kinds=("nonsense",))
        with pytest.raises(StoreError):
            FaultPlan(bitflip_target="header")
        with pytest.raises(StoreError):
            FaultPlan(slow_io_delay=-1.0)

    def test_write_kinds_are_valid_plan_kinds(self):
        plan = FaultPlan(seed=1, period=2, kinds=WRITE_FAULT_KINDS)
        schedule = [plan.fault_for(t) for t in range(8)]
        assert schedule == [
            None, "crash_commit",
            None, "torn_write",
            None, "crash_commit",
            None, "torn_write",
        ]


class TestFaultyStore:
    def _drain_faults(self, faulty, keys, kind):
        """Read until the plan injects `kind` once; return the exception."""
        for _ in range(4 * faulty.plan.period):
            try:
                faulty.decode_many(keys)
            except ReproError as exc:
                return exc
        raise AssertionError(f"{kind} never injected")

    def test_truncate_surfaces_as_compression_error(self, store):
        faulty = FaultyStore(store, FaultPlan(seed=1, period=2, kinds=("truncate",)))
        exc = self._drain_faults(faulty, store.keys()[:3], "truncate")
        assert isinstance(exc, CompressionError)
        assert faulty.faults_injected["truncate"] >= 1

    def test_magic_bitflip_surfaces_as_compression_error(self, store):
        faulty = FaultyStore(store, FaultPlan(seed=2, period=2, kinds=("bitflip",)))
        exc = self._drain_faults(faulty, store.keys()[:3], "bitflip")
        assert isinstance(exc, CompressionError)

    def test_map_oserror_is_typed_and_transient(self, store):
        faulty = FaultyStore(
            store, FaultPlan(seed=3, period=1, kinds=("map_oserror",))
        )
        keys = store.keys()[:2]
        with pytest.raises(StoreError, match="cannot map shard file"):
            faulty.decode_many(keys)
        # Transient: with injection off, the very next read remaps.
        with faulty.calm():
            assert len(faulty.decode_many(keys)) == len(keys)

    def test_slow_io_delays_but_serves_correctly(self, store, reference):
        faulty = FaultyStore(
            store,
            FaultPlan(seed=4, period=1, kinds=("slow_io",), slow_io_delay=0.01),
        )
        keys = store.keys()[:2]
        waveforms = faulty.decode_many(keys)
        for key, waveform in zip(keys, waveforms):
            assert np.array_equal(waveform.samples, reference[key])
        assert faulty.faults_injected["slow_io"] == 1

    def test_clean_ticks_are_bit_identical(self, store, reference):
        faulty = FaultyStore(store, FaultPlan(seed=0, period=1000))
        for key in store.keys():
            (waveform,) = faulty.decode_many([key])
            assert np.array_equal(waveform.samples, reference[key])

    def test_calm_suspends_injection(self, store):
        faulty = FaultyStore(store, FaultPlan(seed=0, period=1))
        with faulty.calm():
            for _ in range(5):
                faulty.decode_many(store.keys()[:2])
        assert sum(faulty.faults_injected.values()) == 0

    def test_duck_types_as_a_store(self, store):
        faulty = FaultyStore(store, FaultPlan(period=1000))
        assert faulty.n_shards == store.n_shards
        assert faulty.keys() == store.keys()
        assert len(faulty) == len(store)
        assert store.keys()[0] in faulty
        with PulseServer(faulty, cache_capacity=8) as server:
            server.fetch(*store.keys()[0])

    def test_detach_unhooks_the_pool(self, store):
        faulty = FaultyStore(store, FaultPlan(period=1))
        assert store.io_fault_hook is not None
        faulty.detach()
        assert store.io_fault_hook is None

    def test_rejects_write_fault_kinds(self, store):
        # Write faults target the commit protocol, not the read path; a
        # read-side FaultyStore must refuse a plan that contains them.
        plan = FaultPlan(seed=0, period=2, kinds=("truncate",) + WRITE_FAULT_KINDS)
        with pytest.raises(StoreError, match="write"):
            FaultyStore(store, plan)


class TestPreemptHooks:
    def test_hook_fires_and_restores(self):
        seen = []
        with preempt_hook(seen.append):
            preempt("somewhere")
        preempt("elsewhere")  # no hook installed: must be a no-op
        assert seen == ["somewhere"]

    def test_set_returns_previous(self):
        def hook(point):
            pass

        assert set_preempt_hook(hook) is None
        assert set_preempt_hook(None) is hook

    def test_serving_stack_visits_yield_points(self, store):
        points = []
        with preempt_hook(points.append):
            with PulseServer(store, cache_capacity=8) as server:
                server.fetch(*store.keys()[0])
        assert "server.fill.pre_lock" in points
        assert "server.fill.locked" in points
        assert "cache.load.pre_insert" in points


class TestInvariantChecker:
    def test_identity_divergence_is_flagged(self, store, reference):
        checker = InvariantChecker(reference)
        key = store.keys()[0]
        good = store.decode_record(*key)
        assert checker.check_identity(key, good)
        corrupt = store.decode_record(*store.keys()[1])
        assert not checker.check_identity(key, corrupt)
        with pytest.raises(ChaosError, match="diverges"):
            checker.raise_if_violated()

    def test_counter_law_breakage_is_flagged(self, reference):
        checker = InvariantChecker(reference)
        checker.check_cache(
            CacheStats(
                capacity=4, size=3, hits=1, misses=2, insertions=9, evictions=1
            )
        )
        with pytest.raises(ChaosError, match="insertions"):
            checker.raise_if_violated()

    def test_untyped_exception_is_a_violation(self, reference):
        checker = InvariantChecker(reference)
        checker.note_error("k", StoreError("fine"))
        assert checker.typed_errors == 1 and not checker.violations
        checker.note_error("k", KeyError("not fine"))
        assert checker.untyped_errors == 1
        with pytest.raises(ChaosError, match="escaped the stack"):
            checker.raise_if_violated()

    def test_net_accounting_law(self, reference):
        class Stats:
            fetches = 5
            fetches_ok = 3
            request_errors = 1
            overloads = 0
            coalesced_keys = 0
            protocol_errors = 0

        checker = InvariantChecker(reference)
        checker.check_net(Stats())
        with pytest.raises(ChaosError, match="fetches"):
            checker.raise_if_violated()


class TestRunChaos:
    def test_quick_soak_is_green_and_injects_every_kind(self):
        report = run_chaos(
            device_spec="bogota", seed=0, threads=3, ops_per_thread=60,
            net_clients=2,
        )
        assert isinstance(report, ChaosReport)
        assert report.ok, report.violations
        assert set(report.faults_injected) == (
            set(FAULT_KINDS) | set(POOL_FAULT_KINDS) | set(WRITE_FAULT_KINDS)
        )
        assert report.typed_errors >= 1
        assert report.untyped_errors == 0
        assert report.identity_checks > 0
        # Phase 1 sizes the cache to the whole catalog, and recovery
        # reads every key once: the two must agree.
        assert report.recovery_reads == report.server_stats["cache"]["capacity"]
        assert report.as_dict()["ok"] is True

    def test_pool_storm_counters(self):
        report = run_chaos(
            device_spec="bogota", seed=3, threads=3, ops_per_thread=60,
            net_clients=0, decode_workers=2,
        )
        assert report.ok, report.violations
        assert report.decode_workers == 2
        assert report.requests_pool > 0
        assert report.pool_stats["workers"] == 2
        # Deaths and respawns stay paired, and the deliberately tiny
        # slab exercised the pipe-transport fallback.  (A SIGKILL sent
        # in the storm's last instants may not be *detected* until
        # after the snapshot, so kills bound deaths from above.)
        assert report.pool_stats["worker_deaths"] >= 1
        assert report.pool_stats["respawns"] == report.pool_stats["worker_deaths"]
        assert report.faults_injected["shm_exhaust"] >= 1
        assert (
            report.faults_injected["worker_kill"]
            >= report.pool_stats["worker_deaths"]
        )

    def test_decode_workers_zero_skips_the_pool_phase(self):
        report = run_chaos(
            device_spec="bogota", seed=0, threads=2, ops_per_thread=30,
            net_clients=0, decode_workers=0,
        )
        assert report.ok, report.violations
        assert report.decode_workers == 0
        assert report.requests_pool == 0
        assert report.pool_stats == {}
        assert not set(POOL_FAULT_KINDS) & set(report.faults_injected)

    def test_write_storm_counters_and_recovery(self):
        report = run_chaos(
            device_spec="bogota", seed=1, threads=2, ops_per_thread=30,
            net_clients=0, decode_workers=0, write_commits=8,
            write_plan=FaultPlan(seed=1, period=2, kinds=WRITE_FAULT_KINDS),
        )
        assert report.ok, report.violations
        assert report.write_commits == 8
        # Every tick stages a batch; a crashed commit only counts when
        # the manifest proved durable before the abort.
        assert 1 <= report.commits_done <= 8
        assert report.requests_rw > 0
        assert report.rw_generation >= 1
        assert report.faults_injected["crash_commit"] >= 1
        assert report.faults_injected["torn_write"] >= 1
        assert report.rw_stats["requests"] > 0
        assert report.rw_stats["cache"]["size"] >= 0

    def test_write_commits_zero_skips_the_write_phase(self):
        report = run_chaos(
            device_spec="bogota", seed=0, threads=2, ops_per_thread=30,
            net_clients=0, decode_workers=0, write_commits=0,
        )
        assert report.ok, report.violations
        assert report.write_commits == 0
        assert report.requests_rw == 0
        assert report.rw_stats == {}
        assert not set(WRITE_FAULT_KINDS) & set(report.faults_injected)

    def test_validates_arguments(self):
        with pytest.raises(ChaosError):
            run_chaos(threads=0)
        with pytest.raises(ChaosError):
            run_chaos(decode_workers=-1)
        with pytest.raises(ChaosError):
            run_chaos(write_commits=-1)

    def test_soak_payload_and_gates(self):
        payload = run_serving_soak(
            device_specs=("bogota",), seed=1, threads=2, ops_per_thread=30,
            net_clients=0,
        )
        ok, failures = soak_gates_ok(payload)
        assert ok, failures
        assert payload["all_ok"]
        assert payload["entries"][0]["device"] == "ibm_bogota"


class TestChaosCli:
    def test_quick_exits_zero(self, capsys):
        assert main(["chaos", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "Chaos soak" in out
        assert "ok" in out

    def test_json_output(self, tmp_path, capsys):
        out_path = tmp_path / "soak.json"
        code = main(
            [
                "chaos", "--devices", "bogota", "--threads", "2",
                "--ops", "30", "--clients", "0", "--seed", "2",
                "--json", str(out_path),
            ]
        )
        assert code == 0
        assert out_path.is_file()
        import json

        payload = json.loads(out_path.read_text())
        assert payload["all_ok"] is True
