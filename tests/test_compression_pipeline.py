"""Tests for the DCT-N / DCT-W / int-DCT-W compression pipelines."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.errors import CompressionError
from repro.compression import (
    VARIANTS,
    compress_waveform,
    compress_channel,
    decompress_channel,
    merge_windows,
    n_windows,
    split_windows,
)
from repro.compression.pipeline import forward_transform, inverse_transform
from repro.pulses import Waveform, drag, gaussian_square


def _drag_waveform(n=144, amp=0.18):
    return Waveform(
        "x_q0", drag(n, amp, n / 4, -0.8), dt=1 / 4.54e9, gate="x", qubits=(0,)
    )


def _flat_top_waveform(n=1360, amp=0.3):
    return Waveform(
        "cr", gaussian_square(n, amp, 64, n - 256), dt=1 / 4.54e9, gate="cx",
        qubits=(0, 1),
    )


class TestWindowHelpers:
    def test_n_windows_ceil(self):
        assert n_windows(33, 16) == 3
        assert n_windows(32, 16) == 2

    def test_split_merge_roundtrip(self):
        x = np.arange(37)
        blocks = split_windows(x, 8)
        assert blocks.shape == (5, 8)
        np.testing.assert_array_equal(merge_windows(blocks, 37), x)

    def test_split_rejects_2d(self):
        with pytest.raises(CompressionError):
            split_windows(np.zeros((2, 2)), 4)

    def test_merge_rejects_overlong(self):
        with pytest.raises(CompressionError):
            merge_windows(np.zeros((2, 4)), 100)


class TestChannelCodec:
    @pytest.mark.parametrize("variant", ["DCT-W", "int-DCT-W"])
    @pytest.mark.parametrize("ws", [8, 16])
    def test_near_lossless_at_zero_threshold(self, variant, ws):
        """Smooth (waveform-like) channels survive a zero-threshold trip
        to within a few LSBs; all loss comes from thresholding."""
        t = np.arange(100)
        codes = np.rint(28000 * np.sin(np.pi * t / 99) ** 2).astype(np.int64)
        channel = compress_channel(codes, ws, variant, threshold=0)
        back = decompress_channel(channel)
        assert np.max(np.abs(back - codes)) <= 4 + 0.005 * 28000

    @pytest.mark.parametrize("variant", ["DCT-W", "int-DCT-W"])
    def test_noise_roundtrip_bounded_relative(self, variant):
        """Full-scale noise sees the HEVC matrices' ~1-2% near-
        orthogonality error (not a waveform use case, but bounded)."""
        rng = np.random.default_rng(4)
        codes = rng.integers(-30000, 30000, size=96)
        channel = compress_channel(codes, 16, variant, threshold=0)
        back = decompress_channel(channel)
        assert np.max(np.abs(back - codes)) <= 3 + 0.02 * 30000

    def test_thresholding_monotone_in_storage(self):
        wf = _flat_top_waveform()
        i_codes, _ = wf.to_fixed_point()
        sizes = []
        for threshold in [0, 32, 128, 512]:
            channel = compress_channel(i_codes.astype(np.int64), 16, "int-DCT-W", threshold)
            sizes.append(channel.stored_words_variable)
        assert sizes == sorted(sizes, reverse=True)

    def test_original_length_preserved(self):
        codes = np.arange(-50, 53)  # length 103, pads to 112
        channel = compress_channel(codes, 16, "int-DCT-W", 0)
        assert channel.original_length == 103
        assert decompress_channel(channel).size == 103


class TestCompressWaveform:
    @pytest.mark.parametrize("variant", VARIANTS)
    def test_reconstruction_faithful(self, variant):
        wf = _drag_waveform()
        result = compress_waveform(wf, window_size=16, variant=variant)
        assert result.mse < 5e-5
        assert result.reconstructed.n_samples == wf.n_samples
        assert result.reconstructed.gate == "x"

    def test_sx_like_pulse_ratio_is_5_33_uniform(self):
        """The paper's floor: 144-sample DRAG at WS=16 -> R = 16/3."""
        result = compress_waveform(_drag_waveform(amp=0.09), window_size=16)
        assert result.compressed.compression_ratio("uniform") == pytest.approx(
            16 / 3, rel=1e-9
        )

    def test_flat_top_compresses_harder_than_drag(self):
        """Fig 7: measurement/CR pulses compress better than 1Q gates."""
        drag_r = compress_waveform(_drag_waveform()).compression_ratio_variable
        flat_r = compress_waveform(_flat_top_waveform()).compression_ratio_variable
        assert flat_r > drag_r

    def test_dct_n_ratio_exceeds_windowed(self):
        """Fig 7b: DCT-N achieves ~100x on long waveforms, far above
        windowed variants."""
        wf = _flat_top_waveform()
        windowed = compress_waveform(wf, window_size=16).compression_ratio
        full = compress_waveform(wf, variant="DCT-N").compression_ratio
        assert full > 4 * windowed

    def test_int_variant_mse_at_least_float(self):
        """Fig 7c: integer approximation adds (slight) extra error."""
        wf = _flat_top_waveform()
        int_mse = compress_waveform(wf, window_size=16, variant="int-DCT-W", threshold=0).mse
        float_mse = compress_waveform(wf, window_size=16, variant="DCT-W", threshold=0).mse
        assert int_mse >= float_mse * 0.5  # same order; int never much better

    def test_mse_grows_with_threshold(self):
        wf = _flat_top_waveform()
        mses = [
            compress_waveform(wf, threshold=t).mse for t in [0, 128, 1024, 4096]
        ]
        assert mses == sorted(mses)

    def test_ws8_stores_more_than_ws16(self):
        """Fig 7b: RLE is capped at WS samples, so WS=8 caps at R=4."""
        wf = _flat_top_waveform()
        r8 = compress_waveform(wf, window_size=8).compression_ratio_variable
        r16 = compress_waveform(wf, window_size=16).compression_ratio_variable
        assert r8 < r16
        assert r8 <= 4.0 + 1e-9

    def test_channels_have_same_window_count(self):
        result = compress_waveform(_drag_waveform())
        compressed = result.compressed
        assert compressed.i_channel.n_windows == compressed.q_channel.n_windows

    def test_storage_accounting_identities(self):
        compressed = compress_waveform(_drag_waveform()).compressed
        assert compressed.stored_words("uniform") == (
            compressed.n_windows * compressed.worst_case_window_words
        )
        assert compressed.stored_words("variable") == sum(compressed.window_words)
        assert compressed.stored_words("variable") <= compressed.stored_words("uniform")
        assert compressed.stored_bits == 32 * compressed.stored_words("uniform")

    def test_unknown_packing_rejected(self):
        compressed = compress_waveform(_drag_waveform()).compressed
        with pytest.raises(CompressionError):
            compressed.stored_words("diagonal")

    def test_bad_variant_rejected(self):
        with pytest.raises(CompressionError):
            compress_waveform(_drag_waveform(), variant="DCT-Z")

    def test_bad_window_size_rejected(self):
        with pytest.raises(CompressionError):
            compress_waveform(_drag_waveform(), window_size=12)

    def test_negative_threshold_rejected(self):
        with pytest.raises(CompressionError):
            compress_waveform(_drag_waveform(), threshold=-1)

    def test_decompress_name_tags_variant(self):
        result = compress_waveform(_drag_waveform(), window_size=8)
        assert "int-DCT-W" in result.reconstructed.name


class TestTransformConvention:
    @given(
        hnp.arrays(np.int64, st.just(16), elements=st.integers(-32767, 32767))
    )
    @settings(max_examples=60, deadline=None)
    def test_coefficients_fit_16_bits(self, block):
        for variant in ("DCT-W", "int-DCT-W"):
            coeffs = forward_transform(block, variant)
            assert np.max(np.abs(coeffs)) <= 32767

    @pytest.mark.parametrize("variant", ["DCT-W", "int-DCT-W"])
    def test_forward_inverse_consistency(self, variant):
        rng = np.random.default_rng(9)
        block = rng.integers(-30000, 30000, size=16)
        back = inverse_transform(forward_transform(block, variant), variant)
        assert np.max(np.abs(back - block)) <= 3 + 0.02 * 30000
