"""Tests for gate unitaries and statevector primitives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.quantum import (
    apply_unitary,
    basis_state,
    bitstring_of_index,
    gate_unitary,
    probabilities,
    sample_counts,
    zero_state,
    zx_rotation,
)
from repro.quantum import gates


class TestGateMatrices:
    @pytest.mark.parametrize(
        "name",
        ["x", "y", "z", "h", "s", "t", "sx", "cx", "cz", "swap", "iswap", "ccx"],
    )
    def test_unitarity(self, name):
        u = gate_unitary(name)
        np.testing.assert_allclose(u @ u.conj().T, np.eye(u.shape[0]), atol=1e-12)

    def test_sx_squared_is_x(self):
        np.testing.assert_allclose(gates.SX @ gates.SX, gates.X, atol=1e-12)

    def test_h_conjugates_x_to_z(self):
        np.testing.assert_allclose(gates.H @ gates.X @ gates.H, gates.Z, atol=1e-12)

    def test_cx_action(self):
        state = apply_unitary(basis_state("10"), gates.CX, (0, 1))
        np.testing.assert_allclose(state, basis_state("11"), atol=1e-12)

    @given(st.floats(-6.28, 6.28))
    @settings(max_examples=40, deadline=None)
    def test_rotations_unitary(self, theta):
        for factory in (gates.rx, gates.ry, gates.rz):
            u = factory(theta)
            np.testing.assert_allclose(u @ u.conj().T, np.eye(2), atol=1e-12)

    def test_rz_is_virtual_phase(self):
        u = gates.rz(np.pi)
        np.testing.assert_allclose(np.abs(np.diag(u)), [1, 1])

    def test_zx_pi_half_entangles(self):
        u = zx_rotation(np.pi / 2)
        np.testing.assert_allclose(u @ u.conj().T, np.eye(4), atol=1e-12)
        state = apply_unitary(zero_state(2), u, (0, 1))
        probs = probabilities(state)
        np.testing.assert_allclose(probs, [0.5, 0.5, 0, 0], atol=1e-12)

    def test_cx_from_zx_identity(self):
        """CX ~ (I x H) after ZX(pi/2) up to 1Q corrections: check the
        entangling power via a Bell state."""
        state = zero_state(2)
        state = apply_unitary(state, gates.H, (0,))
        state = apply_unitary(state, gates.CX, (0, 1))
        probs = probabilities(state)
        np.testing.assert_allclose(probs, [0.5, 0, 0, 0.5], atol=1e-12)

    def test_unknown_gate_rejected(self):
        with pytest.raises(SimulationError):
            gate_unitary("frobnicate")

    def test_wrong_param_count_rejected(self):
        with pytest.raises(SimulationError):
            gate_unitary("rz")
        with pytest.raises(SimulationError):
            gate_unitary("x", (1.0,))


class TestStates:
    def test_zero_state(self):
        state = zero_state(3)
        assert state[0] == 1.0
        assert state.size == 8

    def test_basis_state(self):
        state = basis_state("101")
        assert state[0b101] == 1.0

    def test_invalid_bitstring(self):
        with pytest.raises(SimulationError):
            basis_state("10x")

    def test_apply_on_middle_qubit(self):
        state = apply_unitary(zero_state(3), gates.X, (1,))
        np.testing.assert_allclose(state, basis_state("010"), atol=1e-12)

    def test_two_qubit_on_non_adjacent(self):
        state = apply_unitary(zero_state(3), gates.X, (0,))
        state = apply_unitary(state, gates.CX, (0, 2))
        np.testing.assert_allclose(state, basis_state("101"), atol=1e-12)

    def test_reversed_qubit_order(self):
        """CX with (control, target) = (2, 0)."""
        state = apply_unitary(zero_state(3), gates.X, (2,))
        state = apply_unitary(state, gates.CX, (2, 0))
        np.testing.assert_allclose(state, basis_state("101"), atol=1e-12)

    def test_norm_preserved_random_circuit(self):
        rng = np.random.default_rng(3)
        state = zero_state(4)
        for _ in range(30):
            q = int(rng.integers(0, 4))
            state = apply_unitary(state, gates.H, (q,))
            a, b = rng.choice(4, size=2, replace=False)
            state = apply_unitary(state, gates.CX, (int(a), int(b)))
        assert np.sum(np.abs(state) ** 2) == pytest.approx(1.0)

    def test_bad_unitary_shape(self):
        with pytest.raises(SimulationError):
            apply_unitary(zero_state(2), np.eye(4), (0,))

    def test_bad_qubit_index(self):
        with pytest.raises(SimulationError):
            apply_unitary(zero_state(2), gates.X, (5,))


class TestSampling:
    def test_deterministic_state(self):
        counts = sample_counts(basis_state("01"), shots=100, rng=np.random.default_rng(0))
        assert counts == {"01": 100}

    def test_uniform_superposition(self):
        state = apply_unitary(zero_state(1), gates.H, (0,))
        counts = sample_counts(state, 4000, rng=np.random.default_rng(1))
        assert abs(counts["0"] - 2000) < 200

    def test_readout_error_flips(self):
        counts = sample_counts(
            basis_state("00"),
            shots=2000,
            rng=np.random.default_rng(2),
            readout_flip=0.1,
        )
        assert counts.get("00", 0) < 2000
        assert sum(counts.values()) == 2000

    def test_bitstring_format(self):
        assert bitstring_of_index(5, 4) == "0101"

    def test_invalid_shots(self):
        with pytest.raises(SimulationError):
            sample_counts(zero_state(1), 0)

    def test_unnormalized_state_rejected(self):
        with pytest.raises(SimulationError):
            probabilities(np.array([1.0, 1.0], dtype=complex))
