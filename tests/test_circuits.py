"""Tests for the circuit IR, transpiler, and benchmark builders."""

import numpy as np
import pytest

from repro.errors import ScheduleError, SimulationError
from repro.circuits import (
    BASIS_GATES,
    Circuit,
    adder4_circuit,
    bernstein_vazirani_circuit,
    ghz_circuit,
    paper_benchmarks,
    qaoa_circuit,
    qft_circuit,
    swap_circuit,
    toffoli_circuit,
    transpile,
)
from repro.devices import ibm_device, linear_topology
from repro.quantum import StatevectorSimulator, tvd_fidelity


class TestCircuitIR:
    def test_builder_chaining(self):
        circuit = Circuit(2).h(0).cx(0, 1).measure()
        assert [i.name for i in circuit.instructions] == ["h", "cx", "measure"]

    def test_qubit_bounds_checked(self):
        with pytest.raises(SimulationError):
            Circuit(2).x(2)

    def test_duplicate_qubits_rejected(self):
        with pytest.raises(SimulationError):
            Circuit(2).cx(1, 1)

    def test_depth(self):
        circuit = Circuit(3).h(0).h(1).cx(0, 1).h(2)
        assert circuit.depth() == 2

    def test_counts(self):
        circuit = Circuit(2).cx(0, 1).cx(1, 0).x(0)
        assert circuit.cx_count == 2
        assert circuit.count_ops() == {"cx": 2, "x": 1}

    def test_copy_is_independent(self):
        a = Circuit(1).x(0)
        b = a.copy()
        b.x(0)
        assert len(a) == 1 and len(b) == 2


class TestTranspile:
    @pytest.mark.parametrize("circuit_factory", [
        swap_circuit, toffoli_circuit, lambda: qft_circuit(4), adder4_circuit,
        lambda: bernstein_vazirani_circuit("101"),
        lambda: qaoa_circuit(4, kind="complete", p=1),
    ])
    def test_distribution_preserved(self, circuit_factory):
        """Lowering must not change circuit semantics."""
        circuit = circuit_factory()
        lowered = transpile(circuit)
        sim = StatevectorSimulator()
        fidelity = tvd_fidelity(
            sim.ideal_distribution(circuit), sim.ideal_distribution(lowered)
        )
        assert fidelity > 1 - 1e-9

    def test_only_basis_gates_after_lowering(self):
        lowered = transpile(qft_circuit(4))
        assert set(i.name for i in lowered.instructions) <= set(BASIS_GATES)

    def test_routing_respects_coupling(self):
        topo = linear_topology(4)
        circuit = Circuit(4).cx(0, 3).measure()
        routed = transpile(circuit, topo)
        for inst in routed.instructions:
            if inst.name == "cx":
                assert topo.are_coupled(*inst.qubits)

    def test_routing_preserves_semantics(self):
        """CX between distant qubits still flips the right qubit after
        SWAP insertion (tracked through the layout)."""
        topo = linear_topology(4)
        circuit = Circuit(4).x(0).cx(0, 3).measure()
        routed = transpile(circuit, topo)
        sim = StatevectorSimulator()
        probs = sim.ideal_distribution(routed)
        # logical state: q0=1 flips q3 -> 1001, but logical qubits may
        # sit on different physical wires; exactly two 1s must remain.
        top = int(np.argmax(probs))
        assert bin(top).count("1") == 2

    def test_circuit_too_big_rejected(self):
        with pytest.raises(ScheduleError):
            transpile(Circuit(10).x(0), linear_topology(4))

    def test_routed_on_device(self):
        device = ibm_device("guadalupe")
        routed = transpile(qft_circuit(4), device.topology)
        assert routed.n_qubits == 16
        assert routed.cx_count >= 18  # logical count plus routing


class TestBenchmarks:
    def test_paper_set_names_and_sizes(self):
        circuits = paper_benchmarks()
        names = [c.name for c in circuits]
        assert names == [
            "swap", "toffoli", "qft-4", "adder-4", "bv-5",
            "qaoa-6", "qaoa-8a", "qaoa-8b", "qaoa-10",
        ]
        assert [c.n_qubits for c in circuits] == [2, 3, 4, 4, 6, 6, 8, 8, 10]

    def test_swap_output(self):
        sim = StatevectorSimulator()
        probs = sim.ideal_distribution(swap_circuit())
        assert probs[0b01] == pytest.approx(1.0)

    def test_toffoli_output(self):
        sim = StatevectorSimulator()
        probs = sim.ideal_distribution(toffoli_circuit())
        assert probs[0b111] == pytest.approx(1.0)

    def test_adder_computes_1_plus_1(self):
        """1 + 1 = 10: sum bit 0, carry 1."""
        sim = StatevectorSimulator()
        probs = sim.ideal_distribution(adder4_circuit())
        top = int(np.argmax(probs))
        bits = format(top, "04b")  # (cin, a, b, cout)
        assert bits[2] == "0"  # sum
        assert bits[3] == "1"  # carry
        assert probs[top] == pytest.approx(1.0)

    def test_bv_recovers_secret(self):
        sim = StatevectorSimulator()
        circuit = bernstein_vazirani_circuit("01010")
        probs = sim.ideal_distribution(circuit)
        # ancilla in superposition; the data bits must read the secret.
        top = int(np.argmax(probs))
        assert format(top, "06b")[:5] == "01010"

    def test_bv_cnot_count_matches_secret_weight(self):
        assert bernstein_vazirani_circuit("01010").cx_count == 2

    def test_qaoa_edge_kinds(self):
        complete = qaoa_circuit(6, kind="complete", p=1)
        assert complete.count_ops()["rzz"] == 15
        regular = qaoa_circuit(8, kind="3-regular", p=1)
        assert regular.count_ops()["rzz"] == 12

    def test_qaoa_layers_scale(self):
        p1 = qaoa_circuit(6, kind="complete", p=1)
        p2 = qaoa_circuit(6, kind="complete", p=2)
        assert p2.count_ops()["rzz"] == 2 * p1.count_ops()["rzz"]

    def test_ghz(self):
        sim = StatevectorSimulator()
        probs = sim.ideal_distribution(ghz_circuit(3))
        assert probs[0] == pytest.approx(0.5)
        assert probs[7] == pytest.approx(0.5)

    def test_invalid_inputs(self):
        with pytest.raises(SimulationError):
            qft_circuit(0)
        with pytest.raises(SimulationError):
            bernstein_vazirani_circuit("10a")
        with pytest.raises(SimulationError):
            qaoa_circuit(1)
        with pytest.raises(SimulationError):
            qaoa_circuit(6, kind="hypercube")
