"""Tests for the floating-point DCT (repro.transforms.dct)."""

import numpy as np
import pytest
import scipy.fftpack
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.transforms import dct, idct, dct_matrix, dct_windowed, idct_windowed


def signals(min_size=1, max_size=64):
    return hnp.arrays(
        np.float64,
        st.integers(min_size, max_size),
        elements=st.floats(-1e4, 1e4, allow_nan=False),
    )


class TestDctMatrix:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 8, 16, 17, 32, 100])
    def test_orthonormal(self, n):
        matrix = dct_matrix(n)
        np.testing.assert_allclose(matrix @ matrix.T, np.eye(n), atol=1e-12)

    def test_first_row_is_constant(self):
        matrix = dct_matrix(9)
        np.testing.assert_allclose(matrix[0], 1 / np.sqrt(9))

    def test_read_only(self):
        with pytest.raises(ValueError):
            dct_matrix(8)[0, 0] = 1.0

    @pytest.mark.parametrize("n", [0, -3])
    def test_invalid_size_rejected(self, n):
        with pytest.raises(ValueError):
            dct_matrix(n)

    def test_cached_instance_reused(self):
        assert dct_matrix(16) is dct_matrix(16)


class TestDctRoundTrip:
    @given(signals())
    @settings(max_examples=50, deadline=None)
    def test_idct_inverts_dct(self, x):
        np.testing.assert_allclose(idct(dct(x)), x, atol=1e-8)

    def test_matches_scipy_ortho(self):
        rng = np.random.default_rng(7)
        x = rng.normal(size=33)
        np.testing.assert_allclose(
            dct(x), scipy.fftpack.dct(x, norm="ortho"), atol=1e-10
        )
        np.testing.assert_allclose(
            idct(x), scipy.fftpack.idct(x, norm="ortho"), atol=1e-10
        )

    def test_energy_preserved(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=50)
        assert np.sum(dct(x) ** 2) == pytest.approx(np.sum(x**2))

    def test_rejects_2d_input(self):
        with pytest.raises(ValueError):
            dct(np.zeros((3, 3)))
        with pytest.raises(ValueError):
            idct(np.zeros((3, 3)))

    def test_smooth_signal_compacts_energy(self):
        """The property the whole paper rests on: smooth waveforms put
        nearly all DCT energy in the first few coefficients."""
        t = np.linspace(0, 1, 160)
        smooth = np.exp(-0.5 * ((t - 0.5) / 0.12) ** 2)
        spectrum = dct(smooth)
        head = np.sum(spectrum[:12] ** 2)
        assert head / np.sum(spectrum**2) > 0.999


class TestWindowedDct:
    def test_round_trip_with_padding(self):
        rng = np.random.default_rng(11)
        x = rng.normal(size=37)  # not a multiple of the window
        spectra = dct_windowed(x, 8)
        assert spectra.shape == (5, 8)
        back = idct_windowed(spectra)
        np.testing.assert_allclose(back[:37], x, atol=1e-9)
        np.testing.assert_allclose(back[37:], 0, atol=1e-9)

    def test_exact_multiple_no_padding(self):
        x = np.arange(32, dtype=float)
        assert dct_windowed(x, 16).shape == (2, 16)

    def test_windows_are_independent(self):
        x = np.concatenate([np.ones(8), np.zeros(8)])
        spectra = dct_windowed(x, 8)
        np.testing.assert_allclose(spectra[1], 0, atol=1e-12)

    def test_idct_windowed_rejects_1d(self):
        with pytest.raises(ValueError):
            idct_windowed(np.zeros(8))

    def test_bad_window_size_rejected(self):
        with pytest.raises(ValueError):
            dct_windowed(np.ones(16), 0)
