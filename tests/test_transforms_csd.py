"""Tests for CSD decomposition and shift-add multiplication."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.transforms import (
    OpCount,
    csd_digits,
    multiplier_cost,
    shared_multiplier_cost,
    shift_add_multiply,
)
from repro.transforms.integer_dct import integer_dct_matrix


class TestCsdDigits:
    @given(st.integers(-(2**20), 2**20))
    @settings(max_examples=200, deadline=None)
    def test_digits_reconstruct_value(self, value):
        assert sum(sign << shift for shift, sign in csd_digits(value)) == value

    @given(st.integers(1, 2**20))
    @settings(max_examples=200, deadline=None)
    def test_non_adjacent_form(self, value):
        shifts = sorted(shift for shift, _ in csd_digits(value))
        assert all(b - a >= 2 for a, b in zip(shifts, shifts[1:]))

    def test_zero_has_no_digits(self):
        assert csd_digits(0) == ()

    def test_power_of_two_single_digit(self):
        assert csd_digits(64) == ((6, 1),)

    def test_known_constant_89(self):
        # 89 = 1 - 8 - 32 + 128 (the HEVC odd coefficient)
        assert csd_digits(89) == ((0, 1), (3, -1), (5, -1), (7, 1))

    @given(st.integers(1, 2**16))
    @settings(max_examples=100, deadline=None)
    def test_minimal_weight_not_worse_than_binary(self, value):
        assert len(csd_digits(value)) <= bin(value).count("1")


class TestShiftAddMultiply:
    @given(st.integers(-(2**15), 2**15), st.integers(0, 2**12))
    @settings(max_examples=200, deadline=None)
    def test_equals_plain_multiplication(self, x, constant):
        assert shift_add_multiply(x, constant) == constant * x

    def test_works_on_arrays(self):
        x = np.arange(-5, 6, dtype=np.int64)
        np.testing.assert_array_equal(shift_add_multiply(x, 83), 83 * x)

    @pytest.mark.parametrize("n", [4, 8, 16, 32])
    def test_every_hevc_constant_exact(self, n):
        """The multiplierless engine must realize every matrix constant."""
        x = np.arange(-100, 101, dtype=np.int64)
        for constant in np.unique(np.abs(integer_dct_matrix(n))):
            np.testing.assert_array_equal(
                shift_add_multiply(x, int(constant)), int(constant) * x
            )


class TestOpCounts:
    def test_power_of_two_costs_no_adders(self):
        cost = multiplier_cost(64)
        assert cost.adders == 0
        assert cost.shifters == 1
        assert cost.multipliers == 0

    def test_cost_of_89(self):
        cost = multiplier_cost(89)
        assert cost.adders == 3  # 4 digits -> 3 adders

    def test_opcount_addition(self):
        total = OpCount(1, 2, 3) + OpCount(4, 5, 6)
        assert (total.multipliers, total.adders, total.shifters) == (5, 7, 9)

    def test_shared_cost_no_worse_than_independent(self):
        constants = (89, 75, 50, 18)
        shared = shared_multiplier_cost(constants)
        independent = sum(
            (multiplier_cost(c) for c in constants), OpCount()
        )
        assert shared.adders <= independent.adders
        assert shared.multipliers == 0

    def test_shared_cost_finds_sharing_in_identical_constants(self):
        # Two copies of the same constant: second copy should be free.
        single = shared_multiplier_cost((83,))
        double = shared_multiplier_cost((83, 83))
        assert double.adders <= single.adders + 1

    @given(st.lists(st.integers(1, 1023), min_size=1, max_size=6))
    @settings(max_examples=50, deadline=None)
    def test_shared_cost_is_sane(self, constants):
        cost = shared_multiplier_cost(tuple(constants))
        assert cost.adders >= 0
        assert cost.multipliers == 0
