"""Cross-layer decode conformance: scalar, batched, and cycle-level.

COMPAQT's guarantees only hold if every decode path plays back exactly
what the compiler stored.  These tests hold the three implementations --
the scalar reference (`decompress_channel` / `decompress_waveform`), the
vectorized batch engine (`decompress_channels` / `decompress_batch`),
and the cycle-level microarchitecture (`DecompressionPipeline`) --
bit-identical across random waveforms, thresholds, window sizes and all
pipeline variants.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CompressionError
from repro.compression import (
    compress_batch,
    compress_waveform,
    decompress_batch,
    decompress_channels,
)
from repro.compression.pipeline import (
    decompress_channel,
    decompress_waveform,
)
from repro.core import CompaqtCompiler
from repro.devices import google_device, ibm_device
from repro.microarch import DecompressionPipeline
from repro.pulses import Waveform

WINDOW_SIZES = (8, 16, 32)
#: Every registered codec: the Table II DCT family plus the promoted
#: delta and dictionary baselines.
VARIANTS = ("DCT-N", "DCT-W", "int-DCT-W", "delta", "dictionary")
#: Windowed codecs (everything but the full-frame DCT-N).
WINDOWED_VARIANTS = ("DCT-W", "int-DCT-W", "delta", "dictionary")
#: Variants the cycle-level hardware model supports (its RLE decoder
#: and IDCT engine are fixed-size DCT units; DCT-N has no fixed-size
#: engine and delta/dictionary have no IDCT at all).
MICROARCH_VARIANTS = ("DCT-W", "int-DCT-W")


@st.composite
def waveforms(draw, min_size=1, max_size=96):
    """Random I/Q envelopes with |samples| <= ~0.99."""
    n = draw(st.integers(min_value=min_size, max_value=max_size))
    channel = st.lists(
        st.floats(
            min_value=-0.70, max_value=0.70, allow_nan=False, allow_infinity=False
        ),
        min_size=n,
        max_size=n,
    )
    i = np.asarray(draw(channel))
    q = np.asarray(draw(channel))
    return Waveform("fuzz", i + 1j * q, dt=1e-9, gate="x", qubits=(0,))


thresholds = st.integers(min_value=0, max_value=2000)


def _assert_three_way_identical(compressed, check_microarch: bool) -> None:
    """Scalar, batched, and (optionally) cycle-level decode all agree."""
    scalar_i = decompress_channel(compressed.i_channel)
    scalar_q = decompress_channel(compressed.q_channel)
    batched_i, batched_q = decompress_channels(
        [compressed.i_channel, compressed.q_channel]
    )
    np.testing.assert_array_equal(batched_i, scalar_i)
    np.testing.assert_array_equal(batched_q, scalar_q)

    reference = decompress_waveform(compressed)
    (batched_wf,) = decompress_batch([compressed])
    assert batched_wf.name == reference.name
    np.testing.assert_array_equal(batched_wf.samples, reference.samples)

    if check_microarch:
        report = DecompressionPipeline(16).stream(compressed)
        np.testing.assert_array_equal(report.i_samples, scalar_i)
        np.testing.assert_array_equal(report.q_samples, scalar_q)


class TestRandomWaveformConformance:
    @pytest.mark.parametrize("variant", WINDOWED_VARIANTS)
    @pytest.mark.parametrize("window_size", WINDOW_SIZES)
    @given(waveform=waveforms(), threshold=thresholds)
    @settings(max_examples=25, deadline=None)
    def test_windowed_variants_all_paths(self, variant, window_size, waveform, threshold):
        compressed = compress_waveform(
            waveform, window_size=window_size, variant=variant, threshold=threshold
        ).compressed
        _assert_three_way_identical(
            compressed, check_microarch=variant in MICROARCH_VARIANTS
        )

    @pytest.mark.parametrize("variant", ("delta", "dictionary"))
    @given(waveform=waveforms())
    @settings(max_examples=25, deadline=None)
    def test_promoted_codecs_lossless_at_zero_threshold(self, variant, waveform):
        """delta and dictionary are exact at threshold 0: the decoded
        sample codes equal the quantized input codes bit for bit."""
        result = compress_waveform(
            waveform, window_size=16, variant=variant, threshold=0
        )
        i_codes, q_codes = waveform.to_fixed_point()
        out_i, out_q = result.reconstructed.to_fixed_point()
        np.testing.assert_array_equal(out_i, i_codes)
        np.testing.assert_array_equal(out_q, q_codes)

    @given(waveform=waveforms(), threshold=thresholds)
    @settings(max_examples=40, deadline=None)
    def test_dct_n_scalar_vs_batched(self, waveform, threshold):
        compressed = compress_waveform(
            waveform, variant="DCT-N", threshold=threshold
        ).compressed
        _assert_three_way_identical(compressed, check_microarch=False)

    @given(waveform=waveforms(min_size=1, max_size=8))
    @settings(max_examples=20, deadline=None)
    def test_single_window_pulses(self, waveform):
        """Pulses shorter than one window exercise the padded tail alone."""
        compressed = compress_waveform(
            waveform, window_size=8, variant="int-DCT-W"
        ).compressed
        assert compressed.n_windows == 1
        _assert_three_way_identical(compressed, check_microarch=True)


class TestLibraryConformance:
    @pytest.fixture(scope="class")
    def libraries(self):
        library = ibm_device("lima").pulse_library()
        return {
            variant: CompaqtCompiler(variant=variant).compile_library(library)
            for variant in VARIANTS
        }

    @pytest.mark.parametrize("variant", VARIANTS)
    def test_batch_decode_matches_scalar_per_pulse(self, libraries, variant):
        compiled = libraries[variant]
        entries = [result.compressed for _key, result in compiled]
        batched = decompress_batch(entries)
        for entry, waveform in zip(entries, batched):
            reference = decompress_waveform(entry)
            np.testing.assert_array_equal(waveform.samples, reference.samples)
            i_codes, q_codes = waveform.to_fixed_point()
            np.testing.assert_array_equal(
                i_codes, reference.to_fixed_point()[0]
            )
            np.testing.assert_array_equal(decompress_channel(entry.i_channel),
                                          i_codes.astype(np.int64))

    @pytest.mark.parametrize("variant", MICROARCH_VARIANTS)
    def test_microarch_stream_matches_batch_decode(self, libraries, variant):
        compiled = libraries[variant]
        pipeline = DecompressionPipeline(16)
        entries = [result.compressed for _key, result in compiled]
        batched = decompress_batch(entries)
        for entry, waveform in zip(entries, batched):
            report = pipeline.stream(entry)
            i_codes, q_codes = waveform.to_fixed_point()
            np.testing.assert_array_equal(report.i_samples, i_codes.astype(np.int64))
            np.testing.assert_array_equal(report.q_samples, q_codes.astype(np.int64))

    def test_batch_result_input_roundtrip(self):
        """decompress_batch(compress_batch(...)) reproduces per-pulse
        reconstructions across a heterogeneous library."""
        library = google_device(2, 3).pulse_library()
        pulses = [library.waveform(*key) for key in library.keys()]
        batch = compress_batch(pulses, window_size=8)
        decoded = decompress_batch(batch)
        for result, waveform in zip(batch, decoded):
            np.testing.assert_array_equal(
                waveform.samples, result.reconstructed.samples
            )

    def test_mixed_variants_in_one_batch(self):
        """One decode call may mix variants and window sizes; grouping
        must route every channel through the right inverse."""
        wf = Waveform(
            "mix", 0.5 * np.hanning(50) * (1 + 0.3j), dt=1e-9, gate="x", qubits=(1,)
        )
        entries = [
            compress_waveform(wf, window_size=8, variant="int-DCT-W").compressed,
            compress_waveform(wf, window_size=32, variant="DCT-W").compressed,
            compress_waveform(wf, variant="DCT-N").compressed,
            compress_waveform(wf, window_size=16, variant="int-DCT-W").compressed,
            compress_waveform(wf, window_size=16, variant="delta").compressed,
            compress_waveform(wf, window_size=8, variant="dictionary").compressed,
        ]
        decoded = decompress_batch(entries)
        for entry, waveform in zip(entries, decoded):
            reference = decompress_waveform(entry)
            np.testing.assert_array_equal(waveform.samples, reference.samples)


class TestValidation:
    def test_empty_inputs_rejected(self):
        with pytest.raises(CompressionError):
            decompress_batch([])
        with pytest.raises(CompressionError):
            decompress_channels([])

    def test_wrong_entry_type_rejected(self):
        with pytest.raises(CompressionError):
            decompress_batch(["not-a-compressed-waveform"])
