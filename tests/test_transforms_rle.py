"""Tests for the tail run-length codec."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.errors import CompressionError
from repro.transforms import (
    TAG_COEFF,
    TAG_ZERO_RUN,
    EncodedWindow,
    MemoryWord,
    rle_decode_window,
    rle_encode_blocks,
    rle_encode_window,
    rle_expand_blocks,
)


def windows(size=16):
    return hnp.arrays(np.int64, st.just(size), elements=st.integers(-500, 500))


class TestRoundTrip:
    @given(windows())
    @settings(max_examples=100, deadline=None)
    def test_encode_decode_identity(self, values):
        encoded = rle_encode_window(values)
        np.testing.assert_array_equal(rle_decode_window(encoded), values)

    def test_all_zero_window_is_one_codeword(self):
        encoded = rle_encode_window(np.zeros(16, dtype=int))
        assert encoded.coeffs == ()
        assert encoded.zero_run == 16
        assert encoded.n_words == 1

    def test_typical_window_two_coeffs(self):
        encoded = rle_encode_window([900, -35] + [0] * 14)
        assert encoded.coeffs == (900, -35)
        assert encoded.zero_run == 14
        assert encoded.n_words == 3  # 2 coefficients + codeword

    def test_no_trailing_zeros_no_codeword(self):
        values = list(range(1, 9))
        encoded = rle_encode_window(values)
        assert encoded.zero_run == 0
        assert encoded.n_words == 8

    def test_interior_zeros_stay_explicit(self):
        encoded = rle_encode_window([5, 0, 0, 7, 0, 0, 0, 0])
        assert encoded.coeffs == (5, 0, 0, 7)
        assert encoded.zero_run == 4
        assert encoded.n_words == 5

    def test_empty_window_rejected(self):
        with pytest.raises(CompressionError):
            rle_encode_window(np.array([]))


class TestExpandBlocks:
    @given(
        hnp.arrays(
            np.int64,
            st.tuples(st.integers(1, 12), st.just(16)),
            elements=st.integers(-500, 500),
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_matches_scalar_decode(self, blocks):
        encoded = rle_encode_blocks(blocks)
        expanded = rle_expand_blocks(encoded, 16)
        assert expanded.shape == blocks.shape
        np.testing.assert_array_equal(expanded, blocks)
        for window, row in zip(encoded, expanded):
            np.testing.assert_array_equal(rle_decode_window(window), row)

    def test_all_zero_and_full_windows(self):
        windows = (
            EncodedWindow(coeffs=(), zero_run=8),
            EncodedWindow(coeffs=(1, 2, 3, 4, 5, 6, 7, 8), zero_run=0),
            EncodedWindow(coeffs=(9,), zero_run=7),
        )
        expanded = rle_expand_blocks(windows, 8)
        np.testing.assert_array_equal(expanded[0], np.zeros(8))
        np.testing.assert_array_equal(expanded[1], np.arange(1, 9))
        np.testing.assert_array_equal(expanded[2], [9, 0, 0, 0, 0, 0, 0, 0])

    def test_validation(self):
        with pytest.raises(CompressionError):
            rle_expand_blocks([], 8)
        with pytest.raises(CompressionError):
            rle_expand_blocks([EncodedWindow(coeffs=(1,), zero_run=3)], 8)
        with pytest.raises(CompressionError):
            rle_expand_blocks([EncodedWindow(coeffs=(1,), zero_run=7)], 0)


class TestEncodedWindowInvariants:
    def test_trailing_zero_coeff_rejected(self):
        with pytest.raises(CompressionError):
            EncodedWindow(coeffs=(5, 0), zero_run=3)

    def test_negative_run_rejected(self):
        with pytest.raises(CompressionError):
            EncodedWindow(coeffs=(5,), zero_run=-1)

    def test_window_size_accounting(self):
        window = EncodedWindow(coeffs=(1, 2, 3), zero_run=13)
        assert window.window_size == 16
        assert window.n_words == 4


class TestSerialization:
    def test_to_words_layout(self):
        window = EncodedWindow(coeffs=(7, -2), zero_run=6)
        words = window.to_words()
        assert [w.tag for w in words] == [TAG_COEFF, TAG_COEFF, TAG_ZERO_RUN]
        assert [w.value for w in words] == [7, -2, 6]

    def test_full_window_has_no_codeword(self):
        window = EncodedWindow(coeffs=(1, 2, 3, 4), zero_run=0)
        assert all(w.tag == TAG_COEFF for w in window.to_words())

    def test_memory_word_is_frozen(self):
        word = MemoryWord(TAG_COEFF, 5)
        with pytest.raises(AttributeError):
            word.value = 6
