"""Tests for the dictionary-compression baseline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.errors import CompressionError
from repro.pulses import drag, quantize
from repro.transforms import dictionary_compress, dictionary_decompress


def sample_arrays():
    return hnp.arrays(
        np.int64, st.integers(1, 300), elements=st.integers(-2000, 2000)
    )


class TestLossless:
    @given(sample_arrays(), st.sampled_from([4, 16, 64]))
    @settings(max_examples=100, deadline=None)
    def test_roundtrip(self, samples, dict_size):
        encoded = dictionary_compress(samples, dict_size=dict_size)
        np.testing.assert_array_equal(dictionary_decompress(encoded), samples)


class TestPaperBehaviour:
    def test_waveform_samples_rarely_repeat(self):
        """Section IV-B: dictionary schemes fail on pulse envelopes
        because sample values are essentially all distinct."""
        codes = quantize(drag(160, 0.9, 40, -1.5).real).astype(np.int64)
        encoded = dictionary_compress(codes, dict_size=16)
        assert encoded.hit_rate < 0.35
        assert encoded.compression_ratio < 1.4

    def test_flat_top_is_the_favourable_case(self):
        samples = np.concatenate([np.arange(20), np.full(300, 777)])
        encoded = dictionary_compress(samples, dict_size=8)
        assert encoded.hit_rate > 0.9
        assert encoded.compression_ratio > 1.5

    def test_hit_rate_bounds(self):
        encoded = dictionary_compress(np.arange(100), dict_size=100)
        assert encoded.hit_rate == 1.0


class TestValidation:
    def test_empty_rejected(self):
        with pytest.raises(CompressionError):
            dictionary_compress(np.array([], dtype=int))

    def test_bad_dict_size_rejected(self):
        with pytest.raises(CompressionError):
            dictionary_compress(np.ones(4, dtype=int), dict_size=0)

    def test_encoded_bits_include_dictionary(self):
        samples = np.full(10, 5)
        encoded = dictionary_compress(samples, dict_size=4)
        assert encoded.encoded_bits >= len(encoded.dictionary) * 16


class TestRetiredIsland:
    """The transforms/dictionary.py island is a deprecation shim (PR 4)."""

    def test_shim_module_warns_and_forwards(self):
        import importlib
        import sys
        import warnings

        sys.modules.pop("repro.transforms.dictionary", None)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            shim = importlib.import_module("repro.transforms.dictionary")
        assert any(
            issubclass(w.category, DeprecationWarning) for w in caught
        )
        from repro.compression.codecs.dictionary import (
            dictionary_compress as canonical,
        )

        assert shim.dictionary_compress is canonical
        assert shim.dictionary_compress is dictionary_compress

    def test_lazy_package_forwarding_is_single_sourced(self):
        import repro.transforms as transforms
        from repro.compression.codecs import dictionary as home

        assert transforms.dictionary_compress is home.dictionary_compress
        assert transforms.DictionaryEncoded is home.DictionaryEncoded
