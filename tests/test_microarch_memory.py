"""Tests for the banked compressed waveform memory."""

import numpy as np
import pytest

from repro.errors import CompressionError
from repro.compression import compress_waveform
from repro.microarch import BankedChannelMemory
from repro.pulses import Waveform, gaussian_square
from repro.transforms import TAG_COEFF, TAG_ZERO_RUN


@pytest.fixture()
def channel():
    wf = Waveform(
        "cr", gaussian_square(320, 0.3, 16, 256), dt=1e-9, gate="cx", qubits=(0, 1)
    )
    return compress_waveform(wf, window_size=16).compressed.i_channel


class TestBankedMemory:
    def test_dimensions(self, channel):
        memory = BankedChannelMemory(channel)
        assert memory.n_banks == channel.worst_case_words
        assert memory.n_windows == channel.n_windows
        assert memory.total_words == memory.n_banks * memory.n_windows

    def test_fetch_counts_one_access_per_bank(self, channel):
        memory = BankedChannelMemory(channel)
        memory.fetch_window(0)
        memory.fetch_window(1)
        assert memory.stats.reads == 2 * memory.n_banks
        assert all(v == 2 for v in memory.stats.reads_per_bank.values())

    def test_fetched_words_roundtrip_through_decoder(self, channel):
        from repro.microarch import RleDecoder
        from repro.compression import decompress_channel
        from repro.compression.pipeline import inverse_transform

        memory = BankedChannelMemory(channel)
        decoder = RleDecoder(channel.window_size)
        samples = []
        for w in range(memory.n_windows):
            coeffs = decoder.decode(memory.fetch_window(w))
            samples.append(inverse_transform(coeffs, channel.variant))
        flat = np.concatenate(samples)[: channel.original_length]
        np.testing.assert_array_equal(flat, decompress_channel(channel))

    def test_padding_words_are_inert(self, channel):
        memory = BankedChannelMemory(channel)
        for w in range(memory.n_windows):
            words = memory.fetch_window(w)
            seen_run = False
            for word in words:
                if word.tag == TAG_ZERO_RUN:
                    seen_run = True
                elif seen_run:
                    assert word.tag == TAG_COEFF and word.value == 0

    def test_width_override(self, channel):
        memory = BankedChannelMemory(channel, width=channel.worst_case_words + 2)
        assert memory.n_banks == channel.worst_case_words + 2

    def test_width_below_worst_case_rejected(self, channel):
        with pytest.raises(CompressionError):
            BankedChannelMemory(channel, width=1)

    def test_out_of_range_window_rejected(self, channel):
        memory = BankedChannelMemory(channel)
        with pytest.raises(CompressionError):
            memory.fetch_window(memory.n_windows)

    def test_useful_words_excludes_padding(self, channel):
        memory = BankedChannelMemory(channel)
        assert memory.useful_words() <= memory.total_words
