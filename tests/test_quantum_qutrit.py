"""Tests for the three-level (leakage) pulse simulator."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.compression import compress_waveform
from repro.pulses import Waveform, drag
from repro.quantum import (
    calibrate_qutrit_scale,
    leakage_of,
    pulse_leakage,
    qubit_block_angle,
    qutrit_unitary,
)

_DT = 1 / 4.54e9


def _pulse(beta, duration=144, amp=0.18):
    return Waveform(
        "x", drag(duration, amp, duration / 4, beta), dt=_DT, gate="x", qubits=(0,)
    )


class TestQutritDynamics:
    def test_propagator_unitary(self):
        unitary = qutrit_unitary(_pulse(0.0), scale=1.5e8)
        np.testing.assert_allclose(
            unitary @ unitary.conj().T, np.eye(3), atol=1e-9
        )

    def test_zero_drive_is_phase_only(self):
        wf = Waveform(
            "tiny", np.full(16, 1e-4 + 0j), dt=_DT, gate="x", qubits=(0,)
        )
        unitary = qutrit_unitary(wf, scale=1.0)
        # essentially no population transfer
        assert abs(unitary[0, 0]) > 0.999

    def test_calibration_hits_pi(self):
        wf = _pulse(0.0)
        scale = calibrate_qutrit_scale(wf, np.pi)
        unitary = qutrit_unitary(wf, scale)
        assert qubit_block_angle(unitary) == pytest.approx(np.pi, abs=1e-3)

    def test_invalid_scale_rejected(self):
        with pytest.raises(SimulationError):
            qutrit_unitary(_pulse(0.0), scale=0.0)

    def test_leakage_requires_3x3(self):
        with pytest.raises(SimulationError):
            leakage_of(np.eye(2))


class TestDragPhysics:
    def test_drag_reduces_leakage(self):
        """The reason DRAG exists: the derivative quadrature with
        beta ~ -1/(2*pi*anharmonicity*dt) (= +2.2 here) suppresses
        leakage by ~10x vs a plain Gaussian."""
        plain = pulse_leakage(_pulse(0.0))
        dragged = pulse_leakage(_pulse(2.2))
        assert dragged < plain / 3

    def test_wrong_sign_beta_increases_leakage(self):
        plain = pulse_leakage(_pulse(0.0))
        wrong = pulse_leakage(_pulse(-2.2))
        assert wrong > plain

    def test_shorter_pulses_leak_more(self):
        """Faster gates have wider spectra: the band-limitation /
        leakage trade behind the paper's Discussion section."""
        slow = pulse_leakage(_pulse(0.0, duration=288, amp=0.09))
        fast = pulse_leakage(_pulse(0.0, duration=96, amp=0.27))
        assert fast > slow

    def test_leakage_magnitude_realistic(self):
        """Transmon X-gate leakage sits in the 1e-7..1e-4 band."""
        leakage = pulse_leakage(_pulse(2.2))
        assert 1e-9 < leakage < 1e-4


class TestCompressionLeakageNeutrality:
    def test_compressed_pulse_leaks_no_worse(self):
        """COMPAQT's fidelity neutrality extends to leakage: the
        decompressed envelope's |2>-population matches the original's
        within the paper's negligible band."""
        wf = _pulse(2.2)
        result = compress_waveform(wf, window_size=16)
        original = pulse_leakage(wf)
        compressed = pulse_leakage(result.reconstructed)
        assert abs(compressed - original) < 2e-5
        assert compressed < 1e-4
