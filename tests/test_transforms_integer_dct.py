"""Tests for the HEVC-style integer DCT (int-DCT-W's transform)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.errors import CompressionError
from repro.transforms import (
    LOEFFLER_OP_COUNTS,
    SUPPORTED_SIZES,
    dct_matrix,
    idct_adder_depth,
    idct_op_counts,
    int_dct,
    int_idct,
    int_idct_shift_add,
    integer_dct_matrix,
    scale_bits,
)

_HEVC_4 = np.array(
    [
        [64, 64, 64, 64],
        [83, 36, -36, -83],
        [64, -64, -64, 64],
        [36, -83, 83, -36],
    ]
)


def int16_blocks(n):
    return hnp.arrays(
        np.int64, st.just(n), elements=st.integers(-32767, 32767)
    )


class TestMatrixConstruction:
    def test_matches_published_hevc_4x4(self):
        np.testing.assert_array_equal(integer_dct_matrix(4), _HEVC_4)

    def test_hevc_8_point_odd_row(self):
        np.testing.assert_array_equal(
            integer_dct_matrix(8)[1], [89, 75, 50, 18, -18, -50, -75, -89]
        )

    def test_hevc_16_point_leading_entries(self):
        matrix = integer_dct_matrix(16)
        assert matrix[0, 0] == 64
        assert matrix[1, 0] == 90

    def test_hevc_32_point_leading_entries(self):
        matrix = integer_dct_matrix(32)
        assert matrix[0, 0] == 64
        assert matrix[1, 0] == 90

    @pytest.mark.parametrize("n", SUPPORTED_SIZES)
    def test_scale_formula(self, n):
        assert scale_bits(n) == 6 + np.log2(n) / 2

    @pytest.mark.parametrize("n", SUPPORTED_SIZES)
    def test_near_orthogonality(self, n):
        matrix = integer_dct_matrix(n).astype(float)
        gram = matrix @ matrix.T / 2 ** (2 * scale_bits(n))
        np.testing.assert_allclose(gram, np.eye(n), atol=0.02)

    @pytest.mark.parametrize("n", SUPPORTED_SIZES)
    def test_rows_subsample_double_size(self, n):
        """HEVC structure: even rows of H_2N are H_N (on half the cols)."""
        if n == 32:
            pytest.skip("largest size has no parent")
        parent = integer_dct_matrix(2 * n)
        np.testing.assert_array_equal(parent[::2, : n], integer_dct_matrix(n))

    def test_unsupported_size_rejected(self):
        with pytest.raises(CompressionError):
            integer_dct_matrix(12)


def _roundtrip_bound(x):
    """HEVC's integer matrices are *near*-orthogonal: matrix rounding
    contributes a relative error of ~1-2%, plus up to ~6 LSBs from the
    forward-shift coefficient quantization (dominant for tiny signals).
    Smooth signals (real waveforms) stay within a few LSBs because
    their energy sits in the accurate low-frequency rows."""
    return 6 + 0.02 * np.max(np.abs(x))


class TestRoundTrip:
    @pytest.mark.parametrize("n", SUPPORTED_SIZES)
    def test_reconstruction_error_bounded(self, n):
        rng = np.random.default_rng(n)
        x = rng.integers(-20000, 20000, size=n)
        back = int_idct(int_dct(x))
        assert np.max(np.abs(back.astype(np.int64) - x)) <= _roundtrip_bound(x)

    @given(int16_blocks(16))
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_property_ws16(self, x):
        back = int_idct(int_dct(x))
        assert np.max(np.abs(back.astype(np.int64) - x)) <= _roundtrip_bound(x)

    @given(int16_blocks(8))
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_property_ws8(self, x):
        back = int_idct(int_dct(x))
        assert np.max(np.abs(back.astype(np.int64) - x)) <= _roundtrip_bound(x)

    @pytest.mark.parametrize("n", SUPPORTED_SIZES)
    def test_smooth_signal_roundtrip_sub_percent(self, n):
        """The case that matters for waveforms: band-limited content
        reconstructs to sub-0.5% accuracy (MSE ~1e-6 in float units,
        exactly Fig 7c's int-DCT-W band)."""
        t = np.arange(n)
        x = np.rint(25000 * np.exp(-0.5 * ((t - n / 2) / (n / 5)) ** 2)).astype(
            np.int64
        )
        back = int_idct(int_dct(x))
        assert np.max(np.abs(back.astype(np.int64) - x)) <= 4 + 0.005 * 25000

    @pytest.mark.parametrize("n", SUPPORTED_SIZES)
    def test_dc_only_input(self, n):
        x = np.full(n, 12345)
        y = int_dct(x)
        assert abs(int(y[0])) > 0
        np.testing.assert_array_equal(y[1:], 0)

    def test_forward_output_fits_int16(self):
        x = np.full(16, 32767)
        y = int_dct(x)
        assert y.dtype == np.int16

    def test_coefficients_approximate_scaled_float_dct(self):
        rng = np.random.default_rng(5)
        x = rng.integers(-30000, 30000, size=16)
        expected = dct_matrix(16) @ x / np.sqrt(16)
        # Matrix-entry rounding contributes up to ~0.5 * sum|x| / 2^10.
        np.testing.assert_allclose(int_dct(x), expected, atol=260)

    def test_wrong_size_rejected(self):
        with pytest.raises(CompressionError):
            int_dct(np.zeros(10))
        with pytest.raises(CompressionError):
            int_idct(np.zeros(10))


class TestShiftAddEquivalence:
    @pytest.mark.parametrize("n", SUPPORTED_SIZES)
    def test_idct_matches_multiplierless_reference(self, n):
        """The hardware claim: shifts+adds compute the exact IDCT."""
        rng = np.random.default_rng(n + 1)
        for _ in range(5):
            y = rng.integers(-2000, 2000, size=n)
            np.testing.assert_array_equal(int_idct(y), int_idct_shift_add(y))


class TestOpCounts:
    @pytest.mark.parametrize("n", [8, 16, 32])
    def test_int_variant_has_no_multipliers(self, n):
        ops = idct_op_counts(n, "int-DCT-W")
        assert ops.multipliers == 0
        assert ops.adders > 0
        assert ops.shifters > 0

    def test_loeffler_counts_published(self):
        assert LOEFFLER_OP_COUNTS[8].multipliers == 11
        assert LOEFFLER_OP_COUNTS[8].adders == 29
        assert LOEFFLER_OP_COUNTS[16].multipliers == 26
        assert LOEFFLER_OP_COUNTS[16].adders == 81

    def test_dct_w_variant_uses_loeffler(self):
        assert idct_op_counts(8, "DCT-W") == LOEFFLER_OP_COUNTS[8]

    def test_adders_grow_with_window(self):
        a8 = idct_op_counts(8).adders
        a16 = idct_op_counts(16).adders
        a32 = idct_op_counts(32).adders
        assert a8 < a16 < a32

    def test_ws16_ops_in_table_iv_band(self):
        """Table IV: 186 adders / 128 shifters for WS=16; our greedy CSE
        should land within ~40% of the hand-optimized design."""
        ops = idct_op_counts(16)
        assert 110 <= ops.adders <= 270
        assert 30 <= ops.shifters <= 190

    def test_unknown_variant_rejected(self):
        with pytest.raises(CompressionError):
            idct_op_counts(8, "DCT-XYZ")


class TestAdderDepth:
    def test_depth_grows_with_window(self):
        assert idct_adder_depth(8) <= idct_adder_depth(16) <= idct_adder_depth(32)

    def test_multiplier_variant_deeper_than_int(self):
        assert idct_adder_depth(8, "DCT-W") > idct_adder_depth(8, "int-DCT-W")
