"""Tests for the decoded pulse cache and the concurrent serving layer.

The contract under test: any interleaving of ``fetch`` / ``fetch_batch``
across threads serves samples bit-identical to the scalar decode path
(``decompress_waveform`` over the store record), the LRU never exceeds
its capacity, eviction strictly follows least-recent use, and the
hit/miss/insertion/eviction counters stay mutually consistent.
"""

import threading
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StoreError
from repro.compression.pipeline import decompress_waveform
from repro.core import CompaqtCompiler
from repro.devices import ibm_device
from repro.store import (
    PulseCache,
    PulseServer,
    load_trace,
    open_store,
    save_store,
    synthetic_trace,
    write_trace,
)


@pytest.fixture(scope="module")
def compiled():
    library = ibm_device("bogota").pulse_library()
    return CompaqtCompiler(window_size=16).compile_library(library)


@pytest.fixture(scope="module")
def store(compiled, tmp_path_factory):
    root = tmp_path_factory.mktemp("serving") / "bogota.cqs"
    return save_store(compiled, root, n_shards=3)


@pytest.fixture(scope="module")
def reference(store):
    """The scalar decode path: what every served pulse must equal."""
    return {
        key: decompress_waveform(store.read_record(*key)).samples
        for key in store.keys()
    }


def _assert_served(reference, key, waveform):
    __tracebackhide__ = True
    assert np.array_equal(waveform.samples, reference[key]), key


class TestPulseCache:
    def test_capacity_validated(self, store):
        with pytest.raises(StoreError):
            PulseCache(store, capacity=0)

    def test_get_is_bit_identical_to_scalar(self, store, reference):
        cache = PulseCache(store, capacity=4)
        for key in store.keys():
            _assert_served(reference, key, cache.get(*key))

    def test_hit_and_miss_counters(self, store):
        cache = PulseCache(store, capacity=8)
        key = store.keys()[0]
        cache.get(*key)
        cache.get(*key)
        stats = cache.stats()
        assert (stats.hits, stats.misses) == (1, 1)
        assert stats.lookups == 2
        assert stats.hit_rate == 0.5

    def test_capacity_never_exceeded_and_eviction_is_lru(self, store):
        keys = store.keys()
        cache = PulseCache(store, capacity=3)
        k0, k1, k2, k3 = keys[:4]
        for key in (k0, k1, k2):
            cache.get(*key)
        cache.get(*k0)  # refresh k0: k1 is now least recent
        cache.get(*k3)  # forces one eviction
        assert len(cache) == 3
        held = cache.cached_keys()
        assert k1 not in held
        assert held == [k2, k0, k3]  # least-recent first
        assert cache.stats().evictions == 1

    def test_get_many_counts_each_distinct_key_once(self, store):
        keys = store.keys()
        cache = PulseCache(store, capacity=8)
        out = cache.get_many([keys[0], keys[1], keys[0], keys[1]])
        assert len(out) == 4
        stats = cache.stats()
        assert (stats.hits, stats.misses) == (0, 2)
        assert np.array_equal(out[0].samples, out[2].samples)

    def test_get_many_request_order_and_identity(self, store, reference):
        cache = PulseCache(store, capacity=64)
        requests = list(reversed(store.keys())) + store.keys()[:5]
        served = cache.get_many(requests)
        for key, waveform in zip(requests, served):
            _assert_served(reference, key, waveform)

    def test_peek_counts_nothing(self, store):
        cache = PulseCache(store, capacity=4)
        key = store.keys()[0]
        assert cache.peek(*key) is None
        cache.get(*key)
        assert cache.peek(*key) is not None
        stats = cache.stats()
        assert stats.lookups == 1  # only the get() counted

    def test_clear_keeps_counter_history(self, store):
        cache = PulseCache(store, capacity=4)
        cache.get(*store.keys()[0])
        cache.clear()
        assert len(cache) == 0
        assert cache.stats().misses == 1


class TestCacheLruModel:
    """Hypothesis: the cache tracks a shadow LRU model op for op."""

    @settings(max_examples=40, deadline=None)
    @given(
        capacity=st.integers(min_value=1, max_value=6),
        ops=st.lists(
            st.one_of(
                st.integers(min_value=0, max_value=12),  # get of key index
                st.lists(
                    st.integers(min_value=0, max_value=12),
                    min_size=1,
                    max_size=5,
                ),  # get_many of key indexes
            ),
            max_size=30,
        ),
    )
    def test_matches_shadow_model(self, store, capacity, ops):
        keys = store.keys()[:13]
        cache = PulseCache(store, capacity=capacity)
        model = OrderedDict()
        hits = misses = insertions = evictions = 0
        for op in ops:
            indexes = [op] if isinstance(op, int) else op
            if isinstance(op, int):
                cache.get(*keys[op])
            else:
                cache.get_many([keys[i] for i in op])
            missed = []
            for index in dict.fromkeys(indexes):
                key = keys[index]
                if key in model:
                    hits += 1
                    model.move_to_end(key)
                else:
                    misses += 1
                    missed.append(key)
            # get_many loads exactly the lookup-time misses, as one
            # batch, in first-miss order (a hit evicted by this batch's
            # own inserts is *not* re-loaded)
            for key in missed:
                model[key] = True
                insertions += 1
                if len(model) > capacity:
                    model.popitem(last=False)
                    evictions += 1
            assert cache.cached_keys() == list(model.keys())
            stats = cache.stats()
            assert stats.size == len(model) <= capacity
            assert (stats.hits, stats.misses) == (hits, misses)
            assert (stats.insertions, stats.evictions) == (insertions, evictions)
            assert stats.size == stats.insertions - stats.evictions


class TestPulseServer:
    def test_fetch_and_fetch_batch_identity(self, store, reference):
        with PulseServer(store, cache_capacity=8) as server:
            for key in store.keys():
                _assert_served(reference, key, server.fetch(*key))
            batch = server.fetch_batch(store.keys())
            for key, waveform in zip(store.keys(), batch):
                _assert_served(reference, key, waveform)

    def test_validates_arguments(self, store, compiled, tmp_path):
        with pytest.raises(StoreError):
            PulseServer(store, max_workers=0)
        other = save_store(compiled, tmp_path / "other.cqs", n_shards=2)
        with pytest.raises(StoreError, match="different store"):
            PulseServer(store, cache=PulseCache(other, capacity=2))

    def test_unknown_request_raises(self, store):
        with PulseServer(store) as server:
            with pytest.raises(StoreError, match="no pulse"):
                server.fetch("nope", (0,))

    def test_stats_accumulate(self, store):
        with PulseServer(store, cache_capacity=4) as server:
            server.fetch(*store.keys()[0])
            server.fetch_batch(store.keys()[:3])
            stats = server.stats()
            assert stats.requests == 4
            assert stats.batches == 1
            assert stats.shard_fills >= 1
            assert stats.cache.lookups == stats.cache.hits + stats.cache.misses

    def test_serving_after_close_runs_inline(self, store, reference):
        server = PulseServer(store, cache_capacity=4)
        server.close()
        server.close()  # idempotent
        batch = server.fetch_batch(store.keys()[:5])
        for key, waveform in zip(store.keys()[:5], batch):
            _assert_served(reference, key, waveform)

    def test_single_flight_decodes_once(self, store):
        """N threads missing the same cold key insert exactly once."""
        with PulseServer(store, cache_capacity=8, max_workers=4) as server:
            key = store.keys()[0]
            barrier = threading.Barrier(8)

            def hammer():
                barrier.wait()
                return server.fetch(*key)

            with ThreadPoolExecutor(max_workers=8) as pool:
                results = [f.result() for f in [pool.submit(hammer) for _ in range(8)]]
            assert server.stats().cache.insertions == 1
            first = results[0]
            for waveform in results[1:]:
                assert waveform is first  # literally the cached object

    @settings(max_examples=10, deadline=None)
    @given(
        capacity=st.integers(min_value=1, max_value=16),
        n_shards=st.sampled_from([1, 2, 5]),
        schedules=st.lists(
            st.lists(
                st.tuples(
                    st.booleans(),  # True: fetch_batch, False: fetch
                    st.lists(
                        st.integers(min_value=0, max_value=22),
                        min_size=1,
                        max_size=8,
                    ),
                ),
                min_size=1,
                max_size=4,
            ),
            min_size=2,
            max_size=4,
        ),
    )
    def test_concurrent_interleavings_bit_identical(
        self, compiled, reference, tmp_path_factory, capacity, n_shards, schedules
    ):
        """Any thread interleaving of fetch/fetch_batch serves the
        scalar path's exact samples, within capacity, with consistent
        counters."""
        root = tmp_path_factory.mktemp("interleave") / "s.cqs"
        store = save_store(compiled, root, n_shards=n_shards)
        keys = store.keys()
        with PulseServer(store, cache_capacity=capacity, max_workers=4) as server:

            def run_schedule(schedule):
                out = []
                for batched, indexes in schedule:
                    requested = [keys[i] for i in indexes]
                    if batched:
                        out.extend(zip(requested, server.fetch_batch(requested)))
                    else:
                        for key in requested:
                            out.append((key, server.fetch(*key)))
                return out

            with ThreadPoolExecutor(max_workers=len(schedules)) as pool:
                futures = [pool.submit(run_schedule, s) for s in schedules]
                for future in futures:
                    for key, waveform in future.result():
                        _assert_served(reference, key, waveform)
            stats = server.stats()
            assert stats.cache.size <= capacity
            assert stats.cache.lookups == stats.cache.hits + stats.cache.misses
            assert (
                stats.cache.size
                == stats.cache.insertions - stats.cache.evictions
            )


class TestTraces:
    def test_write_load_round_trip(self, store, tmp_path):
        trace = synthetic_trace(store.keys(), 50, seed=3)
        path = write_trace(trace, tmp_path / "trace.json")
        assert load_trace(path) == trace

    def test_load_accepts_objects_and_pairs(self, tmp_path):
        path = tmp_path / "t.json"
        path.write_text('[["x", [0]], {"gate": "cx", "qubits": [0, 1]}]')
        assert load_trace(path) == [("x", (0,)), ("cx", (0, 1))]

    def test_load_rejects_malformed(self, tmp_path):
        path = tmp_path / "bad.json"
        for payload in ("{not json", '{"no": "requests"}', '[["x"]]', '[[3, [0]]]'):
            path.write_text(payload)
            with pytest.raises(StoreError):
                load_trace(path)
        with pytest.raises(StoreError, match="no trace file"):
            load_trace(tmp_path / "missing.json")

    def test_synthetic_trace_is_deterministic_and_in_population(self, store):
        keys = store.keys()
        a = synthetic_trace(keys, 100, seed=9)
        b = synthetic_trace(keys, 100, seed=9)
        assert a == b
        assert set(a) <= set(keys)
        assert synthetic_trace(keys, 100, seed=10) != a

    def test_synthetic_trace_validates(self, store):
        with pytest.raises(StoreError):
            synthetic_trace([], 5)
        with pytest.raises(StoreError):
            synthetic_trace(store.keys(), 0)
        with pytest.raises(StoreError):
            synthetic_trace(store.keys(), 5, skew=-1)


class TestPrewarmCounting:
    """`prewarm` reports genuinely new insertions, not re-warmed keys."""

    def test_second_prewarm_reports_zero(self, store):
        cache = PulseCache(store, capacity=1000)
        assert cache.prewarm() == len(store.keys())
        # Regression: re-insertions used to be counted again, so a
        # second call re-reported the whole library instead of 0.
        assert cache.prewarm() == 0
        assert cache.stats().insertions == len(store.keys())

    def test_prewarm_after_demand_fills_counts_the_remainder(self, store):
        cache = PulseCache(store, capacity=1000)
        warmed = store.keys()[:3]
        for key in warmed:
            cache.get(*key)
        assert cache.prewarm() == len(store.keys()) - len(warmed)
        assert cache.stats().insertions == len(store.keys())


class TestServedBuffersReadOnly:
    """Cached sample buffers cannot be mutated through any alias."""

    def test_cache_hit_rejects_writes_and_reenabling(self, store, reference):
        cache = PulseCache(store, capacity=8)
        key = store.keys()[0]
        waveform = cache.get(*key)
        with pytest.raises(ValueError):
            waveform.samples[0] = 123.0 + 0j
        with pytest.raises(ValueError):
            # The served array is a view over a read-only owner, so the
            # write flag cannot be flipped back on.
            waveform.samples.setflags(write=True)
        _assert_served(reference, key, cache.get(*key))

    def test_every_serving_path_is_locked(self, store):
        with PulseServer(store, cache_capacity=32) as server:
            served = [server.fetch(*store.keys()[0])]
            served.extend(server.fetch_batch(store.keys()[:5]))
            for waveform in served:
                assert not waveform.samples.flags.writeable
                with pytest.raises(ValueError):
                    waveform.samples.setflags(write=True)

    def test_prewarmed_entries_are_locked(self, store):
        cache = PulseCache(store, capacity=1000)
        cache.prewarm()
        for key in store.keys()[:5]:
            waveform = cache.peek(*key)
            with pytest.raises(ValueError):
                waveform.samples.setflags(write=True)


class _ShardGatedStore:
    """Test double: one shard's decode fails fast, another's blocks.

    Everything else falls through to the real store, so the serving
    stack above cannot tell it apart from a misbehaving disk.
    """

    def __init__(self, store, fail_shard, slow_shard, release):
        self._store = store
        self._fail = fail_shard
        self._slow = slow_shard
        self._release = release
        self.slow_fill_done = False

    def __getattr__(self, name):
        return getattr(self._store, name)

    def decode_many(self, requests):
        requests = list(requests)
        shard = self._store.shard_of(*requests[0])
        if shard == self._fail:
            raise StoreError("chaos: injected shard failure")
        if shard == self._slow:
            assert self._release.wait(timeout=10), "gate never released"
            result = self._store.decode_many(requests)
            self.slow_fill_done = True
            return result
        return self._store.decode_many(requests)


class TestFetchBatchPartialFailure:
    def test_typed_error_propagates_after_all_fills_settle(
        self, compiled, tmp_path
    ):
        """One failing shard must not abandon the other shards' fills.

        Regression: fetch_batch used to return on the first failed
        future, leaking the still-running fills ("exception was never
        retrieved") and letting the final key lookup mask the typed
        error as KeyError.
        """
        base = save_store(compiled, tmp_path / "pf.cqs", n_shards=3)
        by_shard = {}
        for key in base.keys():
            by_shard.setdefault(base.shard_of(*key), []).append(key)
        fail_shard, slow_shard = sorted(by_shard)[:2]
        release = threading.Event()
        gated = _ShardGatedStore(base, fail_shard, slow_shard, release)
        with PulseServer(gated, cache_capacity=64, max_workers=4) as server:
            batch = by_shard[fail_shard][:2] + by_shard[slow_shard][:2]
            timer = threading.Timer(0.2, release.set)
            timer.start()
            try:
                with pytest.raises(StoreError, match="injected shard failure"):
                    server.fetch_batch(batch)
            finally:
                release.set()
                timer.cancel()
            # fetch_batch returned only after the slow shard's fill
            # settled -- and that fill's work was not thrown away.
            assert gated.slow_fill_done
            for key in by_shard[slow_shard][:2]:
                assert server.cache.peek(*key) is not None
