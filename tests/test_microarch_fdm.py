"""Tests for the frequency-division multiplexing model."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.microarch import FdmMixer, max_fdm_channels, plan_fdm
from repro.pulses import gaussian_square


class TestCapacityArithmetic:
    def test_six_gs_dac_fits_several_channels(self):
        """A 6 GS/s DAC (3 GHz Nyquist) fits ~7 channels at 300+100 MHz."""
        assert max_fdm_channels(6.0e9) == 7

    def test_tighter_channels_fit_more(self):
        wide = max_fdm_channels(6.0e9, channel_bandwidth_hz=300e6)
        narrow = max_fdm_channels(6.0e9, channel_bandwidth_hz=100e6)
        assert narrow > wide

    def test_invalid_rates_rejected(self):
        with pytest.raises(ReproError):
            max_fdm_channels(0)


class TestPlanning:
    def test_carriers_spaced_and_bounded(self):
        plan = plan_fdm([0, 1, 2, 3], dac_rate_hz=6.0e9)
        spacings = np.diff(plan.carriers_hz)
        assert np.all(spacings == spacings[0])
        assert max(plan.carriers_hz) < 3.0e9  # inside Nyquist

    def test_over_capacity_rejected(self):
        with pytest.raises(ReproError):
            plan_fdm(list(range(20)), dac_rate_hz=6.0e9)

    def test_empty_group_rejected(self):
        with pytest.raises(ReproError):
            plan_fdm([])

    def test_headroom_shared(self):
        assert plan_fdm([0, 1, 2, 3]).amplitude_headroom == pytest.approx(0.25)


class TestMixer:
    def _envelopes(self, plan, n=4096):
        env = gaussian_square(n, 0.9, 64, n - 256)
        return {q: env for q in plan.qubits}

    def test_combined_stream_bounded(self):
        plan = plan_fdm([0, 1, 2])
        stream = FdmMixer(plan).combine(self._envelopes(plan))
        assert np.max(np.abs(stream)) <= 1.0

    def test_spectrum_peaks_at_carriers(self):
        """Each qubit's energy lands at its assigned IF carrier."""
        plan = plan_fdm([0, 1, 2])
        stream = FdmMixer(plan).combine(self._envelopes(plan))
        spectrum = np.abs(np.fft.rfft(stream))
        freqs = np.fft.rfftfreq(stream.size, d=1 / plan.dac_rate_hz)
        for carrier in plan.carriers_hz:
            window = (freqs > carrier - 50e6) & (freqs < carrier + 50e6)
            outside = (freqs > carrier + 150e6) & (freqs < carrier + 250e6)
            assert spectrum[window].max() > 10 * spectrum[outside].max()

    def test_missing_envelope_rejected(self):
        plan = plan_fdm([0, 1])
        with pytest.raises(ReproError):
            FdmMixer(plan).combine({0: np.zeros(64, dtype=complex)})

    def test_length_mismatch_rejected(self):
        plan = plan_fdm([0, 1])
        with pytest.raises(ReproError):
            FdmMixer(plan).combine(
                {0: np.zeros(64, dtype=complex), 1: np.zeros(32, dtype=complex)}
            )

    def test_memory_streams_still_per_qubit(self):
        """The paper's FDM caveat: one DAC, but the waveform memory
        still generates every multiplexed qubit's stream."""
        plan = plan_fdm([0, 1, 2, 3, 4])
        assert FdmMixer(plan).memory_streams_required() == 5
