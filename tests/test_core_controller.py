"""Integration tests for the end-to-end QubitController."""

import numpy as np
import pytest

from repro.core import CompaqtCompiler
from repro.core.controller import QubitController
from repro.devices import ibm_device


@pytest.fixture(scope="module")
def controller():
    return QubitController(ibm_device("bogota"))


class TestController:
    def test_library_compiled_on_construction(self, controller):
        assert len(controller.library) == 23

    def test_play_streams_exact_samples(self, controller):
        """The controller's cycle-level stream equals the compiled
        library's reconstruction."""
        report = controller.play("x", (0,))
        played = controller.played_waveform("x", (0,))
        i_codes, q_codes = played.to_fixed_point()
        np.testing.assert_array_equal(report.i_samples, i_codes.astype(np.int64))
        np.testing.assert_array_equal(report.q_samples, q_codes.astype(np.int64))

    def test_bandwidth_gain_is_5_33(self, controller):
        """Fig 2b / Table V: WS=16, 3-word windows, 16x clock ratio."""
        assert controller.brams_per_stream == 3
        assert controller.bandwidth_gain == pytest.approx(16 / 3)

    def test_compaqt_reads_less_than_baseline(self, controller):
        compaqt = controller.play("cx", (0, 1))
        baseline = controller.play_uncompressed("cx", (0, 1))
        assert compaqt.bram_reads < baseline.bram_reads / 4

    def test_ws8_uses_six_brams(self):
        controller = QubitController(
            ibm_device("bogota"), CompaqtCompiler(window_size=8)
        )
        assert controller.brams_per_stream == 6
        assert controller.bandwidth_gain == pytest.approx(16 / 6)

    def test_bank_layouts_cover_library(self, controller):
        layouts = controller.bank_layouts()
        assert len(layouts) == len(controller.library)
        assert all(layout.n_banks >= 1 for layout in layouts.values())

    def test_played_waveform_close_to_original(self, controller):
        original = controller.device.pulse_library().waveform("measure", (2,))
        played = controller.played_waveform("measure", (2,))
        assert original.mse(played) < 1e-4
