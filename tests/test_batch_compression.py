"""Batched-vs-scalar parity: the batch engine must be bit-identical.

The scalar pipeline is the reference implementation; `compress_batch`
must reproduce its `EncodedWindow` streams, compression ratios, MSE and
reconstructed samples exactly -- across variants, window sizes, devices,
and the top-k coefficient cap.  These tests are what the CI bench-smoke
job's parity gate is anchored to.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CompressionError
from repro.compression import (
    BatchCompressionResult,
    compress_batch,
    compress_waveform,
)
from repro.compression.pipeline import (
    forward_transform,
    forward_transform_blocks,
    inverse_transform_blocks,
    inverse_transform,
)
from repro.core import CompaqtCompiler
from repro.devices import fluxonium_device, ibm_device
from repro.transforms.rle import rle_encode_blocks, rle_encode_window
from repro.transforms.threshold import (
    hard_threshold,
    top_k_blocks,
    trailing_zero_run,
    trailing_zero_runs,
)

WINDOW_SIZES = (8, 16, 32)
#: Every registered codec: the DCT family plus the promoted baselines.
VARIANTS = ("DCT-N", "DCT-W", "int-DCT-W", "delta", "dictionary")


@pytest.fixture(scope="module")
def bogota_waveforms():
    library = ibm_device("bogota").pulse_library()
    return [library.waveform(*key) for key in library.keys()]


@pytest.fixture(scope="module")
def fluxonium_waveforms():
    library = fluxonium_device(3).pulse_library()
    return [library.waveform(*key) for key in library.keys()]


def _assert_bit_identical(waveforms, **kwargs):
    batch = compress_batch(waveforms, **kwargs)
    for waveform, batched in zip(waveforms, batch):
        scalar = compress_waveform(waveform, **kwargs)
        # Dataclass equality covers every EncodedWindow coefficient and
        # zero-run of both channels.
        assert scalar.compressed == batched.compressed
        assert scalar.mse == batched.mse
        assert scalar.compression_ratio == batched.compression_ratio
        assert (
            scalar.compression_ratio_variable
            == batched.compression_ratio_variable
        )
        assert np.array_equal(
            scalar.reconstructed.samples, batched.reconstructed.samples
        )


class TestDeviceParity:
    @pytest.mark.parametrize("variant", VARIANTS)
    @pytest.mark.parametrize("window_size", WINDOW_SIZES)
    def test_bogota_streams_bit_identical(
        self, bogota_waveforms, variant, window_size
    ):
        if variant == "DCT-N" and window_size != WINDOW_SIZES[0]:
            pytest.skip("DCT-N ignores window size")
        _assert_bit_identical(
            bogota_waveforms, window_size=window_size, variant=variant
        )

    @pytest.mark.parametrize("variant", VARIANTS)
    def test_fluxonium_streams_bit_identical(self, fluxonium_waveforms, variant):
        _assert_bit_identical(fluxonium_waveforms, window_size=16, variant=variant)

    def test_top_k_cap_parity(self, bogota_waveforms):
        _assert_bit_identical(
            bogota_waveforms, window_size=8, variant="int-DCT-W", max_coefficients=2
        )

    def test_zero_threshold_parity(self, bogota_waveforms):
        _assert_bit_identical(
            bogota_waveforms[:4], window_size=16, variant="DCT-W", threshold=0
        )

    def test_compiler_batched_matches_scalar(self, bogota_waveforms):
        library = ibm_device("bogota").pulse_library()
        batched = CompaqtCompiler(window_size=16).compile_library(library)
        scalar = CompaqtCompiler(window_size=16, batched=False).compile_library(
            library
        )
        assert batched.overall_ratio == scalar.overall_ratio
        assert batched.mean_mse == scalar.mean_mse
        for key in library.keys():
            assert batched.result(*key).compressed == scalar.result(*key).compressed


class TestBatchResult:
    def test_provenance_and_aggregates(self, bogota_waveforms):
        batch = compress_batch(bogota_waveforms, window_size=16)
        assert isinstance(batch, BatchCompressionResult)
        assert batch.n_pulses == len(bogota_waveforms)
        assert len(batch) == len(bogota_waveforms)
        assert batch.total_samples == sum(w.n_samples for w in bogota_waveforms)
        assert batch.overall_ratio("variable") >= batch.overall_ratio("uniform") > 1
        assert 0 < batch.mean_mse <= batch.max_mse
        first = bogota_waveforms[0]
        assert batch.result_for(first.name).compressed.name == first.name
        assert batch[0].compressed.name == first.name
        with pytest.raises(CompressionError):
            batch.result_for("no-such-pulse")

    def test_input_validation(self, bogota_waveforms):
        with pytest.raises(CompressionError):
            compress_batch([])
        with pytest.raises(CompressionError):
            compress_batch(bogota_waveforms, window_size=12)
        with pytest.raises(CompressionError):
            compress_batch(bogota_waveforms, threshold=-1)
        with pytest.raises(CompressionError):
            compress_batch(bogota_waveforms, max_coefficients=-1)
        with pytest.raises(CompressionError):
            compress_batch(bogota_waveforms, variant="nope")


int16s = st.integers(min_value=-32768, max_value=32767)


class TestKernelParity:
    """Property-style checks of each vectorized kernel against its
    scalar counterpart on random int16 windows."""

    @given(st.lists(st.lists(int16s, min_size=16, max_size=16), min_size=1, max_size=8))
    @settings(max_examples=50, deadline=None)
    def test_forward_blocks_match_scalar(self, rows):
        blocks = np.array(rows, dtype=np.int64)
        for variant in VARIANTS:
            batched = forward_transform_blocks(blocks, variant)
            for row, out in zip(blocks, batched):
                assert np.array_equal(forward_transform(row, variant), out)

    @given(st.lists(st.lists(int16s, min_size=16, max_size=16), min_size=1, max_size=8))
    @settings(max_examples=50, deadline=None)
    def test_inverse_blocks_match_scalar(self, rows):
        coeffs = np.array(rows, dtype=np.int64)
        for variant in VARIANTS:
            batched = inverse_transform_blocks(coeffs, variant)
            for row, out in zip(coeffs, batched):
                assert np.array_equal(inverse_transform(row, variant), out)

    @given(
        st.lists(st.lists(int16s, min_size=8, max_size=8), min_size=1, max_size=16),
        st.integers(min_value=0, max_value=2000),
    )
    @settings(max_examples=50, deadline=None)
    def test_rle_and_runs_match_scalar(self, rows, threshold):
        blocks = hard_threshold(np.array(rows, dtype=np.int64), threshold)
        encoded = rle_encode_blocks(blocks)
        assert encoded == tuple(rle_encode_window(row) for row in blocks)
        runs = trailing_zero_runs(blocks)
        assert list(runs) == [trailing_zero_run(row) for row in blocks]

    @given(
        st.lists(st.lists(int16s, min_size=8, max_size=8), min_size=1, max_size=16),
        st.integers(min_value=1, max_value=7),
    )
    @settings(max_examples=50, deadline=None)
    def test_top_k_matches_scalar(self, rows, k):
        blocks = np.array(rows, dtype=np.int64)
        batched = top_k_blocks(blocks, k)
        for row, out in zip(blocks, batched):
            kept = row.copy()
            if np.count_nonzero(kept) > k:
                order = np.argsort(np.abs(kept))
                kept[order[: kept.size - k]] = 0
            assert np.array_equal(kept, out)
