"""Tests for coefficient thresholding."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.transforms import hard_threshold, kept_coefficients, trailing_zero_run


def arrays():
    return hnp.arrays(
        np.int64, st.integers(1, 64), elements=st.integers(-1000, 1000)
    )


class TestHardThreshold:
    @given(arrays(), st.integers(0, 500))
    @settings(max_examples=100, deadline=None)
    def test_survivors_meet_threshold(self, values, threshold):
        out = hard_threshold(values, threshold)
        survivors = out[out != 0]
        assert np.all(np.abs(survivors) >= threshold)

    @given(arrays(), st.integers(0, 500))
    @settings(max_examples=100, deadline=None)
    def test_survivors_unchanged(self, values, threshold):
        out = hard_threshold(values, threshold)
        mask = np.abs(values) >= threshold
        np.testing.assert_array_equal(out[mask], values[mask])

    def test_zero_threshold_is_identity(self):
        values = np.array([3, -1, 0, 7])
        np.testing.assert_array_equal(hard_threshold(values, 0), values)

    def test_does_not_mutate_input(self):
        values = np.array([1, 2, 3])
        hard_threshold(values, 10)
        np.testing.assert_array_equal(values, [1, 2, 3])

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            hard_threshold(np.ones(4), -1)

    def test_boundary_is_kept(self):
        """|v| == threshold survives (strict < comparison zeroes)."""
        out = hard_threshold(np.array([5, -5, 4]), 5)
        np.testing.assert_array_equal(out, [5, -5, 0])


class TestRunHelpers:
    def test_trailing_zero_run(self):
        assert trailing_zero_run(np.array([1, 0, 2, 0, 0])) == 2

    def test_all_zeros(self):
        assert trailing_zero_run(np.zeros(7)) == 7

    def test_no_trailing_zeros(self):
        assert trailing_zero_run(np.array([0, 0, 3])) == 0

    def test_kept_coefficients_counts_codeword(self):
        # two kept + one codeword
        assert kept_coefficients(np.array([9, 8, 0, 0, 0, 0, 0, 0])) == 3

    def test_kept_coefficients_full_window(self):
        assert kept_coefficients(np.arange(1, 9)) == 8

    def test_kept_coefficients_all_zero(self):
        assert kept_coefficients(np.zeros(16)) == 1

    @given(arrays())
    @settings(max_examples=100, deadline=None)
    def test_kept_never_exceeds_window(self, values):
        assert 1 <= kept_coefficients(values) <= values.size + 0
