"""Tests for BRAM packing arithmetic (Fig 12, Table V's inputs)."""

import pytest

from repro.errors import CompressionError
from repro.compression import (
    BankLayout,
    brams_per_stream_compaqt,
    brams_per_stream_uncompressed,
    compress_waveform,
    idct_engines_needed,
    pack_waveform,
)
from repro.pulses import Waveform, gaussian_square


class TestBankArithmetic:
    def test_baseline_equals_clock_ratio(self):
        assert brams_per_stream_uncompressed(16) == 16

    def test_qick_ws16_needs_three_brams(self):
        """Fig 12b: ratio 16, WS=16, 3-word windows -> 3 BRAMs."""
        assert brams_per_stream_compaqt(16, 16, 3) == 3

    def test_qick_ws8_needs_six_brams(self):
        """Section V-C: WS=8 needs two engines -> 6 BRAMs."""
        assert brams_per_stream_compaqt(16, 8, 3) == 6

    def test_engines(self):
        assert idct_engines_needed(16, 16) == 1
        assert idct_engines_needed(16, 8) == 2
        assert idct_engines_needed(6, 8) == 1  # non-multiple ratio
        assert idct_engines_needed(32, 8) == 4

    def test_non_multiple_ratio_gain_slightly_lower(self):
        """Section V-C's 6x-ratio example: gain 2x instead of 8/3."""
        baseline = brams_per_stream_uncompressed(6)
        compressed = brams_per_stream_compaqt(6, 8, 3)
        assert baseline / compressed == pytest.approx(2.0)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(CompressionError):
            brams_per_stream_uncompressed(0)
        with pytest.raises(CompressionError):
            idct_engines_needed(16, 0)
        with pytest.raises(CompressionError):
            brams_per_stream_compaqt(16, 16, 0)


class TestBankLayout:
    def _layout(self):
        wf = Waveform(
            "cr", gaussian_square(320, 0.3, 16, 256), dt=1e-9, gate="cx", qubits=(0, 1)
        )
        compressed = compress_waveform(wf, window_size=16).compressed
        return pack_waveform(compressed, clock_ratio=16), compressed

    def test_layout_dimensions(self):
        layout, compressed = self._layout()
        assert layout.width == compressed.worst_case_window_words
        assert layout.n_windows == compressed.n_windows
        assert layout.n_banks == layout.width  # single engine at ratio 16
        assert layout.words_per_bank == compressed.n_windows

    def test_addressing(self):
        layout, _ = self._layout()
        bank, addr = layout.address_of(window=3, slot=1)
        assert (bank, addr) == (1, 3)

    def test_addressing_bounds(self):
        layout, _ = self._layout()
        with pytest.raises(CompressionError):
            layout.address_of(window=layout.n_windows, slot=0)
        with pytest.raises(CompressionError):
            layout.address_of(window=0, slot=layout.width)
