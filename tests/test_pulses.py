"""Tests for envelopes, quantization, Waveform and PulseLibrary."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.errors import DeviceError
from repro.pulses import (
    FULL_SCALE,
    PulseLibrary,
    Waveform,
    constant,
    cosine_tapered,
    dequantize,
    drag,
    gaussian,
    gaussian_square,
    lifted_gaussian,
    quantize,
    quantize_iq,
)


class TestEnvelopes:
    def test_gaussian_peak_at_center(self):
        env = gaussian(161, 0.8, 30).real
        assert env[80] == pytest.approx(0.8)
        assert np.argmax(env) == 80

    def test_lifted_gaussian_edges_near_zero(self):
        env = lifted_gaussian(160, 0.9, 40).real
        assert abs(env[0]) < 0.02
        assert abs(env[-1]) < 0.02
        assert env.max() == pytest.approx(0.9, abs=1e-3)

    def test_lifted_gaussian_symmetric(self):
        env = lifted_gaussian(160, 0.5, 40).real
        np.testing.assert_allclose(env, env[::-1], atol=1e-12)

    def test_drag_quadrature_crosses_zero_at_center(self):
        env = drag(160, 0.5, 40, 1.5)
        q = env.imag
        assert q[79] * q[80] <= 0 or abs(q[79]) < 1e-9
        # antisymmetric derivative
        np.testing.assert_allclose(q, -q[::-1], atol=1e-12)

    def test_drag_beta_zero_is_pure_gaussian(self):
        env = drag(160, 0.5, 40, 0.0)
        np.testing.assert_allclose(env.imag, 0)

    def test_gaussian_square_plateau(self):
        env = gaussian_square(1360, 0.3, 64, 1104).real
        rise = (1360 - 1104) // 2
        plateau = env[rise : rise + 1104]
        np.testing.assert_allclose(plateau, 0.3)
        assert abs(env[0]) < 0.02

    def test_gaussian_square_zero_width_is_bell(self):
        env = gaussian_square(160, 0.5, 20, 0).real
        assert env.max() <= 0.5 + 1e-9

    def test_gaussian_square_width_bounds(self):
        with pytest.raises(ValueError):
            gaussian_square(100, 0.5, 10, 101)

    def test_cosine_tapered_flat_center(self):
        env = cosine_tapered(100, 0.7, 0.4).real
        assert env[50] == pytest.approx(0.7)
        assert env[0] < 0.1

    def test_cosine_taper_fraction_validated(self):
        with pytest.raises(ValueError):
            cosine_tapered(100, 0.5, 0.0)

    def test_constant_envelope(self):
        np.testing.assert_allclose(constant(10, 0.25).real, 0.25)

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: gaussian(0, 1, 1),
            lambda: drag(0, 1, 1, 1),
            lambda: gaussian_square(0, 1, 1, 0),
        ],
    )
    def test_zero_duration_rejected(self, factory):
        with pytest.raises(ValueError):
            factory()


class TestQuantization:
    @given(
        hnp.arrays(
            np.float64,
            st.integers(1, 100),
            elements=st.floats(-1.0, 1.0, allow_nan=False),
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_roundtrip_within_half_lsb(self, values):
        back = dequantize(quantize(values))
        assert np.max(np.abs(back - values)) <= 0.5 / FULL_SCALE + 1e-12

    def test_full_scale_maps_to_max_code(self):
        assert quantize(np.array([1.0]))[0] == FULL_SCALE
        assert quantize(np.array([-1.0]))[0] == -FULL_SCALE

    def test_saturation(self):
        assert quantize(np.array([2.0]))[0] == FULL_SCALE

    def test_quantize_iq_splits_channels(self):
        i_codes, q_codes = quantize_iq(np.array([0.5 + 0.25j]))
        assert i_codes[0] == quantize(np.array([0.5]))[0]
        assert q_codes[0] == quantize(np.array([0.25]))[0]


class TestWaveform:
    def _wf(self, n=160):
        return Waveform("x_q0", drag(n, 0.5, n / 4, -1.0), dt=1e-9, gate="x", qubits=(0,))

    def test_basic_geometry(self):
        wf = self._wf()
        assert wf.n_samples == 160
        assert wf.duration == pytest.approx(160e-9)
        assert wf.duration_ns == pytest.approx(160)

    def test_memory_accounting(self):
        wf = self._wf()
        assert wf.sample_bits == 32
        assert wf.memory_bits == 160 * 32
        assert wf.memory_bytes == 160 * 4

    def test_amplitude_bound_enforced(self):
        with pytest.raises(ValueError):
            Waveform("bad", np.array([1.5 + 0j]), dt=1e-9)

    def test_empty_samples_rejected(self):
        with pytest.raises(ValueError):
            Waveform("bad", np.array([], dtype=complex), dt=1e-9)

    def test_nonpositive_dt_rejected(self):
        with pytest.raises(ValueError):
            Waveform("bad", np.array([0.1 + 0j]), dt=0.0)

    def test_samples_read_only(self):
        wf = self._wf()
        with pytest.raises(ValueError):
            wf.samples[0] = 0

    def test_fixed_point_roundtrip(self):
        wf = self._wf()
        i_codes, q_codes = wf.to_fixed_point()
        back = Waveform.from_fixed_point(i_codes, q_codes, wf.dt)
        assert wf.mse(back) < 1e-9

    def test_mse_requires_equal_length(self):
        with pytest.raises(ValueError):
            self._wf(160).mse(self._wf(80))

    def test_mse_of_self_is_zero(self):
        wf = self._wf()
        assert wf.mse(wf) == 0.0

    def test_with_samples_preserves_binding(self):
        wf = self._wf()
        other = wf.with_samples(np.zeros(5, dtype=complex), name="z")
        assert other.gate == "x"
        assert other.qubits == (0,)
        assert other.name == "z"


class TestPulseLibrary:
    def _library(self):
        lib = PulseLibrary(device_name="test")
        for q in range(3):
            lib.add(
                Waveform(
                    f"x_q{q}", drag(16, 0.5, 4, 0.5), dt=1e-9, gate="x", qubits=(q,)
                )
            )
        lib.add(
            Waveform(
                "cx_q0_q1",
                gaussian_square(64, 0.4, 8, 32),
                dt=1e-9,
                gate="cx",
                qubits=(0, 1),
            )
        )
        return lib

    def test_lookup(self):
        lib = self._library()
        assert lib.waveform("x", (1,)).name == "x_q1"

    def test_missing_entry_raises(self):
        with pytest.raises(DeviceError):
            self._library().waveform("x", (9,))

    def test_unbound_waveform_rejected(self):
        lib = PulseLibrary()
        with pytest.raises(DeviceError):
            lib.add(Waveform("w", np.array([0.1 + 0j]), dt=1e-9))

    def test_len_iter_contains(self):
        lib = self._library()
        assert len(lib) == 4
        assert ("cx", (0, 1)) in lib
        assert ("cx", (1, 0)) not in lib
        assert len(list(lib)) == 4

    def test_gates_and_filters(self):
        lib = self._library()
        assert lib.gates() == ["x", "cx"]
        assert len(lib.for_gate("x")) == 3
        assert {w.name for w in lib.for_qubit(0)} == {"x_q0", "cx_q0_q1"}

    def test_totals(self):
        lib = self._library()
        assert lib.total_samples == 3 * 16 + 64
        assert lib.total_bits == lib.total_samples * 32

    def test_subset(self):
        lib = self._library()
        sub = lib.subset([("x", (0,)), ("cx", (0, 1))])
        assert len(sub) == 2

    def test_replacement_overwrites(self):
        lib = self._library()
        lib.add(
            Waveform("x_q0_v2", drag(16, 0.4, 4, 0.1), dt=1e-9, gate="x", qubits=(0,))
        )
        assert len(lib) == 4
        assert lib.waveform("x", (0,)).name == "x_q0_v2"
