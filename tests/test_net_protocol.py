"""Fuzz and conformance tests for the ``CQN1`` wire protocol.

The contract under test: the protocol codecs are *total*.  Every
well-formed message round-trips bit-exactly; every malformed byte
string -- truncated at any offset, padded with trailing bytes, carrying
unknown types/modes/statuses, or outright random -- raises
:class:`ProtocolError`.  Nothing hangs, nothing returns garbage, and no
other exception type escapes.
"""

import random
import struct

import numpy as np
import pytest

from repro.errors import ProtocolError
from repro.pulses.waveform import Waveform
from repro.serve_net import protocol


KEYS = [("sx", (0,)), ("cx", (0, 1)), ("measure", (3,))]


def payload_of(frame_bytes: bytes) -> bytes:
    """Strip the u32 length prefix off an encoded frame."""
    length = protocol.parse_frame_length(frame_bytes[:4])
    assert len(frame_bytes) == 4 + length
    return frame_bytes[4:]


class TestFraming:
    def test_frame_round_trip(self):
        framed = protocol.frame(b"abc")
        assert protocol.parse_frame_length(framed[:4]) == 3
        assert framed[4:] == b"abc"

    def test_empty_payload_rejected(self):
        with pytest.raises(ProtocolError):
            protocol.frame(b"")

    def test_zero_length_prefix_rejected(self):
        with pytest.raises(ProtocolError):
            protocol.parse_frame_length(struct.pack("<I", 0))

    def test_short_header_rejected(self):
        for n in range(4):
            with pytest.raises(ProtocolError):
                protocol.parse_frame_length(b"\x01" * n)

    def test_oversized_length_prefix_rejected(self):
        for length in (
            protocol.MAX_FRAME_BYTES + 1,
            0x7FFFFFFF,
            0xFFFFFFFF,
        ):
            with pytest.raises(ProtocolError):
                protocol.parse_frame_length(struct.pack("<I", length))

    def test_custom_bound_applies(self):
        header = struct.pack("<I", 1024)
        assert protocol.parse_frame_length(header) == 1024
        with pytest.raises(ProtocolError):
            protocol.parse_frame_length(header, max_frame=1023)


class TestRequestRoundTrip:
    @pytest.mark.parametrize("mode", [protocol.MODE_RECORD, protocol.MODE_SAMPLES])
    def test_fetch(self, mode):
        request = protocol.decode_request(payload_of(protocol.encode_fetch(KEYS, mode)))
        assert isinstance(request, protocol.FetchRequest)
        assert request.mode == mode
        assert request.keys == tuple(KEYS)

    def test_empties(self):
        assert isinstance(
            protocol.decode_request(payload_of(protocol.encode_ping())),
            protocol.PingRequest,
        )
        assert isinstance(
            protocol.decode_request(payload_of(protocol.encode_stats())),
            protocol.StatsRequest,
        )
        assert isinstance(
            protocol.decode_request(payload_of(protocol.encode_keys())),
            protocol.KeysRequest,
        )

    def test_unicode_gate_names(self):
        keys = [("θ-rot", (7, 65535))]
        request = protocol.decode_request(payload_of(protocol.encode_fetch(keys)))
        assert request.keys == (("θ-rot", (7, 65535)),)

    def test_empty_key_batch_rejected(self):
        with pytest.raises(ProtocolError):
            protocol.encode_fetch([])

    def test_oversized_key_batch_rejected_on_encode(self):
        keys = [("x", (0,))] * (protocol.MAX_KEYS_PER_REQUEST + 1)
        with pytest.raises(ProtocolError):
            protocol.encode_fetch(keys)

    def test_oversized_key_count_rejected_on_decode(self):
        # Hand-craft a FETCH claiming more keys than the bound allows.
        body = bytes([protocol.MSG_FETCH, protocol.MODE_SAMPLES])
        body += struct.pack("<H", protocol.MAX_KEYS_PER_REQUEST + 1)
        with pytest.raises(ProtocolError):
            protocol.decode_request(body)

    def test_unknown_request_type_rejected(self):
        for msg_type in (0x00, 0x08, 0x42, 0x81, 0xFF):
            with pytest.raises(ProtocolError):
                protocol.decode_request(bytes([msg_type]))

    def test_traced_fetch_round_trip(self):
        frame_bytes = protocol.encode_fetch(
            KEYS, protocol.MODE_SAMPLES, trace=(0xDEADBEEF, 0x1234)
        )
        request = protocol.decode_request(payload_of(frame_bytes))
        assert isinstance(request, protocol.FetchRequest)
        assert request.keys == tuple(KEYS)
        assert request.trace_id == 0xDEADBEEF
        assert request.parent_span_id == 0x1234

    def test_untraced_fetch_is_byte_identical_to_legacy(self):
        # trace=None must produce the pre-extension FETCH bytes exactly,
        # so old servers keep decoding new clients.
        assert protocol.encode_fetch(KEYS) == protocol.encode_fetch(KEYS, trace=None)
        payload = payload_of(protocol.encode_fetch(KEYS, trace=None))
        assert payload[0] == protocol.MSG_FETCH
        request = protocol.decode_request(payload)
        assert request.trace_id is None
        assert request.parent_span_id == 0

    def test_traced_fetch_rejects_bad_ids_on_encode(self):
        with pytest.raises(ProtocolError):
            protocol.encode_fetch(KEYS, trace=(0, 0))  # zero trace id
        with pytest.raises(ProtocolError):
            protocol.encode_fetch(KEYS, trace=(1 << 64, 0))
        with pytest.raises(ProtocolError):
            protocol.encode_fetch(KEYS, trace=(1, -1))

    def test_traced_fetch_rejects_zero_trace_id_on_decode(self):
        good = bytearray(payload_of(protocol.encode_fetch(KEYS, trace=(1, 0))))
        good[3:11] = struct.pack("<Q", 0)  # trace id field
        with pytest.raises(ProtocolError):
            protocol.decode_request(bytes(good))

    def test_metrics_round_trip(self):
        request = protocol.decode_request(payload_of(protocol.encode_metrics()))
        assert isinstance(request, protocol.MetricsRequest)

    def test_traces_round_trip(self):
        request = protocol.decode_request(payload_of(protocol.encode_traces(limit=7)))
        assert isinstance(request, protocol.TracesRequest)
        assert request.limit == 7

    def test_traces_limit_bounds(self):
        with pytest.raises(ProtocolError):
            protocol.encode_traces(limit=0)
        with pytest.raises(ProtocolError):
            protocol.encode_traces(limit=protocol.MAX_TRACES_PER_REQUEST + 1)
        body = bytes([protocol.MSG_TRACES, protocol.OBS_EXT_VERSION])
        body += struct.pack("<H", protocol.MAX_TRACES_PER_REQUEST + 1)
        with pytest.raises(ProtocolError):
            protocol.decode_request(body)

    def test_wrong_extension_version_rejected(self):
        bad_version = protocol.OBS_EXT_VERSION + 1
        for good in (
            protocol.encode_metrics(),
            protocol.encode_traces(),
            protocol.encode_fetch(KEYS, trace=(1, 0)),
        ):
            payload = bytearray(payload_of(good))
            payload[1] = bad_version
            with pytest.raises(ProtocolError):
                protocol.decode_request(bytes(payload))

    def test_unknown_fetch_mode_rejected(self):
        good = bytearray(payload_of(protocol.encode_fetch(KEYS)))
        good[1] = 7  # mode byte
        with pytest.raises(ProtocolError):
            protocol.decode_request(bytes(good))

    def test_bad_keys_rejected_on_encode(self):
        with pytest.raises(ProtocolError):
            protocol.encode_fetch([("", (0,))])
        with pytest.raises(ProtocolError):
            protocol.encode_fetch([("x", (-1,))])
        with pytest.raises(ProtocolError):
            protocol.encode_fetch([("x", (0x10000,))])
        with pytest.raises(ProtocolError):
            protocol.encode_fetch([("x", tuple(range(256)))])

    @pytest.mark.parametrize(
        "encoder",
        [
            lambda: protocol.encode_fetch(KEYS, protocol.MODE_SAMPLES),
            lambda: protocol.encode_fetch(KEYS, protocol.MODE_RECORD),
            lambda: protocol.encode_fetch(
                KEYS, protocol.MODE_SAMPLES, trace=(0xABCDEF, 77)
            ),
            protocol.encode_ping,
            protocol.encode_stats,
            protocol.encode_keys,
            protocol.encode_metrics,
            lambda: protocol.encode_traces(limit=9),
        ],
    )
    def test_every_truncation_raises(self, encoder):
        payload = payload_of(encoder())
        for cut in range(len(payload)):
            with pytest.raises(ProtocolError):
                protocol.decode_request(payload[:cut])

    @pytest.mark.parametrize(
        "encoder",
        [
            lambda: protocol.encode_fetch(KEYS),
            lambda: protocol.encode_fetch(KEYS, trace=(5, 5)),
            protocol.encode_ping,
            protocol.encode_stats,
            protocol.encode_keys,
            protocol.encode_metrics,
            lambda: protocol.encode_traces(),
        ],
    )
    def test_trailing_bytes_raise(self, encoder):
        payload = payload_of(encoder())
        with pytest.raises(ProtocolError):
            protocol.decode_request(payload + b"\x00")


class TestReplyRoundTrip:
    def test_fetch_reply(self):
        items = [b"alpha", b"", b"gamma" * 100]
        reply = protocol.decode_reply(
            payload_of(protocol.encode_reply_fetch(protocol.MODE_RECORD, items))
        )
        assert reply.status == protocol.STATUS_OK
        assert reply.echo_type == protocol.MSG_FETCH
        assert reply.mode == protocol.MODE_RECORD
        assert reply.items == tuple(items)

    def test_ping_stats_keys_replies(self):
        reply = protocol.decode_reply(payload_of(protocol.encode_reply_ping()))
        assert (reply.status, reply.echo_type) == (
            protocol.STATUS_OK,
            protocol.MSG_PING,
        )
        blob = b'{"requests": 3}'
        reply = protocol.decode_reply(payload_of(protocol.encode_reply_stats(blob)))
        assert reply.items == (blob,)
        reply = protocol.decode_reply(payload_of(protocol.encode_reply_keys(KEYS)))
        assert reply.keys == tuple(KEYS)

    def test_metrics_traces_replies(self):
        blob = b'{"counters": {"net.fetches": 12}}'
        reply = protocol.decode_reply(payload_of(protocol.encode_reply_metrics(blob)))
        assert (reply.status, reply.echo_type) == (
            protocol.STATUS_OK,
            protocol.MSG_METRICS,
        )
        assert reply.items == (blob,)
        blob = b'[{"trace_id": "00ff", "spans": []}]'
        reply = protocol.decode_reply(payload_of(protocol.encode_reply_traces(blob)))
        assert (reply.status, reply.echo_type) == (
            protocol.STATUS_OK,
            protocol.MSG_TRACES,
        )
        assert reply.items == (blob,)

    def test_overload_reply(self):
        reply = protocol.decode_reply(payload_of(protocol.encode_reply_overload()))
        assert reply.status == protocol.STATUS_OVERLOAD
        assert reply.items == ()

    def test_error_reply(self):
        reply = protocol.decode_reply(
            payload_of(protocol.encode_reply_error("no such pulse"))
        )
        assert reply.status == protocol.STATUS_ERROR
        assert reply.message == "no such pulse"

    def test_error_reply_clamps_long_messages(self):
        frame_bytes = protocol.encode_reply_error("x" * 100_000)
        reply = protocol.decode_reply(payload_of(frame_bytes))
        assert len(reply.message.encode()) == 0xFFFF

    def test_unknown_status_rejected(self):
        with pytest.raises(ProtocolError):
            protocol.decode_reply(bytes([protocol.MSG_REPLY, 9]))

    def test_unknown_echo_type_rejected(self):
        with pytest.raises(ProtocolError):
            protocol.decode_reply(bytes([protocol.MSG_REPLY, protocol.STATUS_OK, 0x42]))

    def test_request_type_rejected_as_reply(self):
        with pytest.raises(ProtocolError):
            protocol.decode_reply(payload_of(protocol.encode_ping()))

    def test_oversized_item_count_rejected(self):
        body = bytes(
            [
                protocol.MSG_REPLY,
                protocol.STATUS_OK,
                protocol.MSG_FETCH,
                protocol.MODE_RECORD,
            ]
        ) + struct.pack("<I", protocol.MAX_KEYS_PER_REQUEST + 1)
        with pytest.raises(ProtocolError):
            protocol.decode_reply(body)

    @pytest.mark.parametrize(
        "encoder",
        [
            lambda: protocol.encode_reply_fetch(protocol.MODE_SAMPLES, [b"ab", b"c"]),
            protocol.encode_reply_ping,
            lambda: protocol.encode_reply_stats(b"{}"),
            lambda: protocol.encode_reply_keys(KEYS),
            lambda: protocol.encode_reply_metrics(b'{"counters": {}}'),
            lambda: protocol.encode_reply_traces(b"[]"),
            protocol.encode_reply_overload,
            lambda: protocol.encode_reply_error("boom"),
        ],
    )
    def test_every_truncation_raises(self, encoder):
        payload = payload_of(encoder())
        for cut in range(len(payload)):
            with pytest.raises(ProtocolError):
                protocol.decode_reply(payload[:cut])

    def test_trailing_bytes_raise(self):
        payload = payload_of(protocol.encode_reply_overload())
        with pytest.raises(ProtocolError):
            protocol.decode_reply(payload + b"\x00")


class TestSamplesItem:
    def _waveform(self, n=64, seed=3):
        rng = np.random.default_rng(seed)
        samples = (rng.normal(size=n) + 1j * rng.normal(size=n)) * 0.05
        return Waveform(
            name="sx_q0",
            samples=samples.astype(np.complex128),
            dt=2.2222e-10,
            gate="sx",
            qubits=(0,),
        )

    def test_round_trip_is_bit_identical(self):
        waveform = self._waveform()
        item = protocol.encode_samples_item(waveform)
        out = protocol.decode_samples_item(item, "sx", (0,))
        assert out.name == waveform.name
        assert out.dt == waveform.dt
        assert out.gate == "sx"
        assert out.qubits == (0,)
        assert out.samples.tobytes() == waveform.samples.tobytes()

    def test_every_truncation_raises(self):
        item = protocol.encode_samples_item(self._waveform(n=8))
        for cut in range(len(item)):
            with pytest.raises(ProtocolError):
                protocol.decode_samples_item(item[:cut], "sx", (0,))

    def test_trailing_bytes_raise(self):
        item = protocol.encode_samples_item(self._waveform(n=8))
        with pytest.raises(ProtocolError):
            protocol.decode_samples_item(item + b"\x00", "sx", (0,))


class TestRandomFuzz:
    """Seeded random-byte fuzz: only ProtocolError may escape."""

    def _corpus(self):
        rng = random.Random(0xC0DEC)
        cases = []
        for _ in range(300):
            cases.append(rng.randbytes(rng.randrange(0, 64)))
        # Mutations of valid payloads: flip one byte at a random offset.
        seeds = [
            payload_of(protocol.encode_fetch(KEYS)),
            payload_of(protocol.encode_fetch(KEYS, trace=(0xFEED, 3))),
            payload_of(protocol.encode_traces(limit=4)),
            payload_of(protocol.encode_reply_fetch(protocol.MODE_SAMPLES, [b"xy"])),
            payload_of(protocol.encode_reply_keys(KEYS)),
            payload_of(protocol.encode_reply_metrics(b'{"gauges": {}}')),
            payload_of(protocol.encode_reply_error("bad")),
        ]
        for seed_payload in seeds:
            for _ in range(100):
                mutated = bytearray(seed_payload)
                pos = rng.randrange(len(mutated))
                mutated[pos] ^= 1 << rng.randrange(8)
                cases.append(bytes(mutated))
        return cases

    def test_decoders_are_total(self):
        for blob in self._corpus():
            for decoder in (protocol.decode_request, protocol.decode_reply):
                try:
                    decoder(blob)
                except ProtocolError:
                    pass  # the only acceptable failure mode

    def test_request_frames_survive_reframing(self):
        # frame -> parse_frame_length -> decode is the full inbound path.
        framed = protocol.encode_fetch(KEYS)
        length = protocol.parse_frame_length(framed[:4])
        request = protocol.decode_request(framed[4 : 4 + length])
        assert request.keys == tuple(KEYS)
