"""Tests for adaptive (flat-top bypass) compression."""

import pytest

from repro.errors import CompressionError
from repro.core import adaptive_compress, RepeatSegment, WindowSegment
from repro.compression import compress_waveform
from repro.pulses import Waveform, drag, gaussian_square, constant


def _flat_top(n=1360, width=1104):
    return Waveform(
        "cr", gaussian_square(n, 0.3, 64, width), dt=1 / 4.54e9, gate="cx",
        qubits=(0, 1),
    )


class TestAdaptiveFlatTop:
    def test_plateau_found_and_bypassed(self):
        result = adaptive_compress(_flat_top())
        repeats = [s for s in result.segments if isinstance(s, RepeatSegment)]
        assert len(repeats) == 1
        assert result.bypass_fraction > 0.5

    def test_reconstruction_quality(self):
        result = adaptive_compress(_flat_top())
        assert result.mse < 1e-5
        assert result.reconstructed.n_samples == 1360

    def test_plateau_reconstructed_exactly(self):
        wf = _flat_top()
        result = adaptive_compress(wf)
        repeat = next(s for s in result.segments if isinstance(s, RepeatSegment))
        i_codes, _ = wf.to_fixed_point()
        # the plateau value is the exact quantized sample
        assert repeat.i_value in i_codes

    def test_fewer_words_than_plain_compression(self):
        """Fig 19's premise: the plateau costs one codeword instead of
        one window per 16 samples."""
        wf = _flat_top()
        plain = compress_waveform(wf, window_size=16).compressed.stored_words("uniform")
        adaptive = adaptive_compress(wf).stored_words
        assert adaptive < plain / 2

    def test_idct_windows_only_for_ramps(self):
        result = adaptive_compress(_flat_top())
        total_windows = 1360 // 16
        assert result.idct_windows < total_windows / 2

    def test_pure_constant_pulse_single_repeat(self):
        wf = Waveform("dc", constant(320, 0.25), dt=1e-9, gate="x", qubits=(0,))
        result = adaptive_compress(wf)
        assert result.bypass_fraction == 1.0
        assert result.stored_words == 1

    def test_100ns_flat_top_fig19_case(self):
        """Fig 19 uses a 100 ns flat-top: bypass should dominate."""
        n = 448  # ~100 ns at 4.54 GS/s, multiple of 16
        wf = Waveform(
            "ft", gaussian_square(n, 0.4, 16, n - 128), dt=1 / 4.54e9, gate="cx",
            qubits=(0, 1),
        )
        result = adaptive_compress(wf)
        assert result.bypass_fraction > 0.5


class TestAdaptiveFallback:
    def test_drag_pulse_has_no_plateau(self):
        wf = Waveform("x", drag(144, 0.18, 36, -0.5), dt=1e-9, gate="x", qubits=(0,))
        result = adaptive_compress(wf)
        assert result.bypass_samples == 0
        assert len(result.segments) == 1
        assert isinstance(result.segments[0], WindowSegment)

    def test_fallback_matches_plain_pipeline_quality(self):
        wf = Waveform("x", drag(144, 0.18, 36, -0.5), dt=1e-9, gate="x", qubits=(0,))
        adaptive = adaptive_compress(wf, threshold=128)
        plain = compress_waveform(wf, threshold=128)
        assert adaptive.mse == pytest.approx(plain.mse, rel=1e-9)

    def test_invalid_min_plateau_rejected(self):
        with pytest.raises(CompressionError):
            adaptive_compress(_flat_top(), min_plateau_windows=0)
