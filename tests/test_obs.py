"""Tests for the unified telemetry layer (``repro.obs``).

The contract under test: histogram quantiles agree with
``numpy.quantile`` when every value lands in its own bucket and stay
within one bucket's width otherwise; counters incremented from N
racing threads sum *exactly* (no lost updates); snapshot merging is
associative, commutative, and None-safe (the algebra that makes
per-worker aggregation order-independent); the trace ring stays
bounded under a storm of traces; the Prometheus exposition parses; and
the METRICS/TRACES wire messages round-trip over a real socket with
counters that agree with the legacy stats surfaces.
"""

import json
import threading
import urllib.request

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.pipeline import decompress_waveform
from repro.core import CompaqtCompiler
from repro.devices import ibm_device
from repro.obs import (
    DEFAULT_LATENCY_BOUNDS,
    Counter,
    Histogram,
    MetricsRegistry,
    Tracer,
    activate,
    exact_quantile,
    format_trace_tree,
    merge_snapshots,
    merge_trace_spans,
    render_prometheus,
    span,
    stage_breakdown,
    start_metrics_server,
)
from repro.serve_net import PulseClient, serve_in_thread
from repro.store import PulseServer, save_store


# ---------------------------------------------------------------------------
# exact_quantile: the shared definition every percentile surface uses.
# ---------------------------------------------------------------------------


class TestExactQuantile:
    @settings(max_examples=200, deadline=None)
    @given(
        values=st.lists(
            st.floats(
                min_value=1e-9, max_value=1e6, allow_nan=False, allow_infinity=False
            ),
            min_size=1,
            max_size=200,
        ),
        q=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_matches_numpy_quantile(self, values, q):
        expected = float(np.quantile(np.asarray(values, dtype=np.float64), q))
        got = exact_quantile(values, q)
        assert got == pytest.approx(expected, rel=1e-12, abs=1e-12)

    def test_presorted_fast_path(self):
        values = sorted([5.0, 1.0, 3.0, 2.0, 4.0])
        for q in (0.0, 0.25, 0.5, 0.77, 1.0):
            assert exact_quantile(values, q, presorted=True) == exact_quantile(
                values, q
            )

    def test_empty_and_bad_q(self):
        with pytest.raises(ValueError):
            exact_quantile([], 0.5)
        with pytest.raises(ValueError):
            exact_quantile([1.0], 1.5)


# ---------------------------------------------------------------------------
# Histogram: log-spaced buckets with interpolated quantiles.
# ---------------------------------------------------------------------------


class TestHistogram:
    def test_exact_stats(self):
        hist = Histogram("t.latency")
        for value in (0.001, 0.002, 0.004, 0.5):
            hist.observe(value)
        assert hist.count == 4
        assert hist.sum == pytest.approx(0.507)
        snap = hist.snapshot()
        assert snap["min"] == pytest.approx(0.001)
        assert snap["max"] == pytest.approx(0.5)
        assert sum(snap["buckets"]) == 4

    def test_empty_quantile_is_zero(self):
        assert Histogram("t.empty").quantile(0.5) == 0.0

    @settings(max_examples=100, deadline=None)
    @given(
        values=st.lists(
            st.floats(min_value=1e-5, max_value=50.0, allow_nan=False),
            min_size=1,
            max_size=100,
        ),
        q=st.sampled_from([0.0, 0.5, 0.95, 0.99, 1.0]),
    )
    def test_quantile_bounded_by_neighbor_rank_buckets(self, values, q):
        """The estimate stays inside the neighboring ranks' buckets.

        The exact quantile at fractional rank ``q * (n - 1)`` sits
        between order statistics ``x[floor]`` and ``x[ceil]``.  The
        histogram resolves the rank to a bucket, so its answer must lie
        between the lower edge of ``x[floor]``'s bucket and the upper
        edge of ``x[ceil]``'s bucket -- and always inside the exact
        observed [min, max], which the histogram tracks separately.
        """
        from bisect import bisect_left
        from math import ceil, floor

        hist = Histogram("t.h")
        for value in values:
            hist.observe(value)
        got = hist.quantile(q)
        assert min(values) - 1e-12 <= got <= max(values) + 1e-12
        xs = sorted(values)
        target = q * (len(xs) - 1)
        lo_stat, hi_stat = xs[floor(target)], xs[ceil(target)]
        bounds = list(DEFAULT_LATENCY_BOUNDS)
        lo_index = bisect_left(bounds, lo_stat)
        hi_index = bisect_left(bounds, hi_stat)
        lower_edge = bounds[lo_index - 1] if lo_index > 0 else min(values)
        upper_edge = bounds[hi_index] if hi_index < len(bounds) else max(values)
        assert min(lower_edge, min(values)) - 1e-12 <= got
        assert got <= max(upper_edge, max(values)) + 1e-12

    def test_single_value_quantiles_are_exact_range(self):
        hist = Histogram("t.one")
        hist.observe(0.25)
        for q in (0.0, 0.5, 1.0):
            got = hist.quantile(q)
            assert 0.0 < got
            snap = hist.snapshot()
            assert snap["min"] <= got <= snap["max"]

    def test_custom_bounds_and_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.histogram("t.size", bounds=(1.0, 2.0, 4.0))
        with pytest.raises(ValueError):
            registry.histogram("t.size", bounds=(1.0, 2.0))

    def test_bad_quantile_rejected(self):
        hist = Histogram("t.h2")
        hist.observe(1.0)
        with pytest.raises(ValueError):
            hist.quantile(-0.1)


# ---------------------------------------------------------------------------
# Counter: lock-free increments must never lose an update.
# ---------------------------------------------------------------------------


class TestCounterConcurrency:
    def test_racing_threads_sum_exactly(self):
        counter = Counter("t.races")
        n_threads, per_thread = 8, 5_000

        def hammer():
            for _ in range(per_thread):
                counter.inc()

        threads = [threading.Thread(target=hammer) for _ in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == n_threads * per_thread

    def test_mixed_bulk_and_unit_increments(self):
        counter = Counter("t.bulk")
        n_threads, per_thread = 6, 2_000

        def hammer(step):
            for _ in range(per_thread):
                counter.inc(step)

        threads = [
            threading.Thread(target=hammer, args=(step,))
            for step in range(1, n_threads + 1)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        expected = per_thread * sum(range(1, n_threads + 1))
        assert counter.value == expected


# ---------------------------------------------------------------------------
# merge_snapshots: the aggregation algebra.
# ---------------------------------------------------------------------------


def _random_snapshot(rng):
    registry = MetricsRegistry()
    for name in rng.sample(["a.x", "a.y", "b.z", "c.w"], k=rng.randint(1, 4)):
        registry.counter(name).inc(rng.randint(0, 100))
    registry.gauge("g.depth").set(rng.random() * 10)
    hist = registry.histogram("h.lat")
    for _ in range(rng.randint(0, 20)):
        hist.observe(rng.random())
    return registry.snapshot()


class TestMergeSnapshots:
    def test_associative_and_commutative(self):
        import random as _random

        rng = _random.Random(7)
        snaps = [_random_snapshot(rng) for _ in range(3)]
        a, b, c = snaps
        left = merge_snapshots(merge_snapshots(a, b), c)
        right = merge_snapshots(a, merge_snapshots(b, c))
        flat = merge_snapshots(a, b, c)
        assert left == right == flat
        assert merge_snapshots(a, b) == merge_snapshots(b, a)

    def test_none_and_empty_are_identity(self):
        import random as _random

        snap = _random_snapshot(_random.Random(3))
        assert merge_snapshots(snap, None) == merge_snapshots(snap)
        assert merge_snapshots(None, None) == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }

    def test_histogram_buckets_sum_and_extremes_combine(self):
        h1, h2 = Histogram("h"), Histogram("h")
        h1.observe(0.001)
        h2.observe(1.0)
        merged = merge_snapshots(
            {"histograms": {"h": h1.snapshot()}},
            {"histograms": {"h": h2.snapshot()}},
        )["histograms"]["h"]
        assert merged["count"] == 2
        assert merged["min"] == pytest.approx(0.001)
        assert merged["max"] == pytest.approx(1.0)
        assert sum(merged["buckets"]) == 2


# ---------------------------------------------------------------------------
# Registry semantics.
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")

    def test_kind_collision_rejected(self):
        registry = MetricsRegistry()
        registry.counter("dual")
        with pytest.raises(ValueError):
            registry.gauge("dual")

    def test_disabled_registry_is_inert(self):
        registry = MetricsRegistry(enabled=False)
        counter = registry.counter("quiet")
        counter.inc(10)
        histogram = registry.histogram("quiet.h")
        histogram.observe(1.0)
        assert counter.value == 0
        assert histogram.count == 0
        assert registry.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }


# ---------------------------------------------------------------------------
# Prometheus exposition.
# ---------------------------------------------------------------------------


class TestPrometheus:
    def test_exposition_parses_and_buckets_are_cumulative(self):
        registry = MetricsRegistry()
        registry.counter("net.fetches").inc(3)
        registry.gauge("net.inflight").set(2)
        hist = registry.histogram("net.request_seconds")
        for value in (0.001, 0.001, 0.5):
            hist.observe(value)
        text = render_prometheus(registry.snapshot())
        lines = [line for line in text.splitlines() if line]
        assert "net_fetches 3" in lines
        assert any(line.startswith("net_inflight ") for line in lines)
        assert '# TYPE net_request_seconds histogram' in lines
        bucket_counts = []
        for line in lines:
            if line.startswith("net_request_seconds_bucket"):
                bucket_counts.append(int(line.rsplit(" ", 1)[1]))
        assert bucket_counts == sorted(bucket_counts)  # cumulative
        assert bucket_counts[-1] == 3
        assert any('le="+Inf"' in line for line in lines)
        assert any(line.startswith("net_request_seconds_count 3") for line in lines)
        # Every sample line is "<name{labels}> <number>".
        for line in lines:
            if line.startswith("#"):
                continue
            value = line.rsplit(" ", 1)[1]
            float(value)


# ---------------------------------------------------------------------------
# Tracing.
# ---------------------------------------------------------------------------


class TestTracer:
    def test_ring_stays_bounded_under_storm(self):
        tracer = Tracer(sample_rate=1.0, capacity=16)
        for index in range(500):
            root = tracer.start_trace("storm", index=index)
            root.finish()
        stats = tracer.stats()
        assert stats["buffered"] == 16
        assert stats["dropped"] == 500 - 16
        recent = tracer.recent()
        assert len(recent) == 16
        # Newest last: the final trace survived.
        assert recent[-1]["spans"][0]["tags"]["index"] == 499

    def test_zero_rate_never_samples_but_client_id_forces(self):
        tracer = Tracer(sample_rate=0.0)
        assert tracer.start_trace("s") is None
        forced = tracer.start_trace("s", trace_id=0xABC)
        assert forced is not None
        forced.finish()
        assert tracer.find(0xABC) is not None

    def test_span_context_nests_and_noops_without_parent(self):
        with span("orphan") as orphan:
            assert orphan is None  # no active trace: free
        tracer = Tracer(sample_rate=1.0)
        root = tracer.start_trace("root")
        with activate(root):
            with span("child", shard=3) as child:
                assert child is not None
                with span("grandchild") as grandchild:
                    assert grandchild.parent_id == child.span_id
        root.finish()
        trace = tracer.recent(limit=1)[0]
        stages = [s["stage"] for s in trace["spans"]]
        assert stages == ["root", "child", "grandchild"]

    def test_breakdown_self_times_sum_to_root(self):
        tracer = Tracer(sample_rate=1.0)
        root = tracer.start_trace("e2e")
        with activate(root):
            with span("a"):
                pass
            with span("b"):
                pass
        root.finish()
        trace = tracer.recent(limit=1)[0]
        breakdown = stage_breakdown(trace["spans"])
        assert breakdown["ok"], breakdown["problems"]
        total = sum(breakdown["self_s"].values())
        assert total == pytest.approx(breakdown["end_to_end_s"], abs=1e-6)

    def test_merge_dedupes_and_tree_renders(self):
        tracer = Tracer(sample_rate=1.0)
        root = tracer.start_trace("root")
        with activate(root):
            with span("leaf"):
                pass
        root.finish()
        trace = tracer.recent(limit=1)[0]
        merged = merge_trace_spans(trace, trace, None)
        assert len(merged) == len(trace["spans"])
        tree = format_trace_tree(trace)
        assert "root" in tree and "leaf" in tree and "ms" in tree


# ---------------------------------------------------------------------------
# Wire + HTTP exposure, end to end.
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def obs_store(tmp_path_factory):
    library = ibm_device("bogota").pulse_library()
    compiled = CompaqtCompiler(window_size=16).compile_library(library)
    root = tmp_path_factory.mktemp("obs_net") / "bogota.cqs"
    return save_store(compiled, root, n_shards=2)


class TestWireExposure:
    def test_metrics_and_traces_over_socket(self, obs_store):
        keys = obs_store.keys()[:4]
        client_tracer = Tracer(sample_rate=1.0)
        with PulseServer(obs_store, cache_capacity=64) as serving:
            with serve_in_thread(serving, trace_sample_rate=1.0) as handle:
                with PulseClient(*handle.address, tracer=client_tracer) as client:
                    served = client.fetch_batch(keys)
                    snapshot = client.metrics()
                    traces = client.traces(limit=8)
                stats = handle.server.stats()
        assert len(served) == len(keys)
        counters = snapshot["counters"]
        assert counters["net.fetches"] == stats.fetches == 1
        assert counters["net.fetches_ok"] == stats.fetches_ok == 1
        assert counters["cache.misses"] == len(keys)
        assert counters["server.requests"] >= 1
        assert "net.request_seconds" in snapshot["histograms"]
        # The traced fetch crossed the wire: the server half carries the
        # client's trace id and its spans nest under the client span.
        client_trace = client_tracer.recent(limit=1)[0]
        server_trace = next(
            t for t in traces if t["trace_id"] == client_trace["trace_id"]
        )
        spans = merge_trace_spans(client_trace, server_trace)
        stages = {s["stage"] for s in spans}
        assert {"client.fetch", "server.admission", "server.fill"} <= stages
        breakdown = stage_breakdown(spans)
        assert breakdown["ok"], breakdown["problems"]

    def test_http_scrape_matches_registry(self, obs_store):
        with PulseServer(obs_store, cache_capacity=8) as serving:
            with serve_in_thread(serving) as handle:
                with PulseClient(*handle.address) as client:
                    client.fetch(*obs_store.keys()[0])
                with start_metrics_server(
                    handle.server.metrics_snapshot, host="127.0.0.1", port=0
                ) as http:
                    host, port = http.address
                    with urllib.request.urlopen(
                        f"http://{host}:{port}/metrics", timeout=5
                    ) as response:
                        text = response.read().decode("utf-8")
                    with urllib.request.urlopen(
                        f"http://{host}:{port}/metrics.json", timeout=5
                    ) as response:
                        blob = json.loads(response.read().decode("utf-8"))
        assert "net_fetches 1" in text.splitlines()
        assert blob["counters"]["net.fetches"] == 1
