"""Tests for the noisy simulator and fidelity metrics."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.circuits import Circuit, ghz_circuit, transpile
from repro.quantum import (
    NoiseModel,
    StatevectorSimulator,
    average_gate_fidelity,
    distribution_from_array,
    hellinger_fidelity,
    normalized_fidelity,
    total_variation_distance,
    tvd_fidelity,
)
from repro.quantum.gates import X, rz


class TestSimulator:
    def test_bell_distribution(self):
        sim = StatevectorSimulator()
        probs = sim.ideal_distribution(Circuit(2).h(0).cx(0, 1).measure())
        np.testing.assert_allclose(probs, [0.5, 0, 0, 0.5], atol=1e-12)

    def test_sampling_matches_distribution(self):
        sim = StatevectorSimulator(seed=3)
        counts = sim.sample(ghz_circuit(2), shots=4000)
        assert set(counts) <= {"00", "11"}
        assert abs(counts["00"] - 2000) < 200

    def test_noise_degrades_ghz(self):
        noisy = StatevectorSimulator(
            noise=NoiseModel(p1=0.01, p2=0.05, readout=0.02), seed=4
        )
        counts = noisy.sample(ghz_circuit(3), shots=3000)
        bad_shots = sum(v for k, v in counts.items() if k not in ("000", "111"))
        assert bad_shots > 0

    def test_gate_errors_applied(self):
        """An X-valued coherent error after every X cancels the gate.

        (``ideal_distribution`` deliberately ignores configured errors;
        ``final_state`` is the erred evolution.)"""
        from repro.quantum import probabilities

        errors = {("x", (0,)): X}
        sim = StatevectorSimulator(gate_errors=errors)
        probs = probabilities(sim.final_state(Circuit(1).x(0).measure()))
        assert probs[0] == pytest.approx(1.0)

    def test_ideal_distribution_ignores_errors(self):
        errors = {("x", (0,)): X}
        sim = StatevectorSimulator(gate_errors=errors)
        probs = sim.ideal_distribution(Circuit(1).x(0).measure())
        assert probs[1] == pytest.approx(1.0)

    def test_wildcard_gate_error(self):
        from repro.quantum import probabilities

        errors = {("x", ()): X}
        sim = StatevectorSimulator(gate_errors=errors)
        probs = probabilities(sim.final_state(Circuit(1).x(0).measure()))
        assert probs[0] == pytest.approx(1.0)

    def test_rz_never_gets_errors(self):
        from repro.quantum import probabilities

        errors = {("rz", ()): X}
        sim = StatevectorSimulator(gate_errors=errors)
        probs = probabilities(sim.final_state(Circuit(1).rz(0.3, 0).measure()))
        assert probs[0] == pytest.approx(1.0)

    def test_invalid_shots(self):
        with pytest.raises(SimulationError):
            StatevectorSimulator().sample(ghz_circuit(2), 0)

    def test_transpiled_circuit_same_distribution_under_sim(self):
        circuit = ghz_circuit(3)
        sim = StatevectorSimulator()
        a = sim.ideal_distribution(circuit)
        b = sim.ideal_distribution(transpile(circuit))
        assert tvd_fidelity(a, b) > 1 - 1e-9


class TestFidelityMetrics:
    def test_tvd_identical(self):
        assert total_variation_distance({"00": 1.0}, {"00": 1.0}) == 0.0

    def test_tvd_disjoint(self):
        assert total_variation_distance({"00": 1.0}, {"11": 1.0}) == 1.0

    def test_tvd_accepts_arrays(self):
        p = np.array([0.5, 0.5, 0, 0])
        q = np.array([0.25, 0.25, 0.25, 0.25])
        assert total_variation_distance(p, q) == pytest.approx(0.5)

    def test_fidelity_is_one_minus_tvd(self):
        p, q = {"0": 0.7, "1": 0.3}, {"0": 0.5, "1": 0.5}
        assert tvd_fidelity(p, q) == pytest.approx(1 - 0.2)

    def test_hellinger_bounds(self):
        p = {"0": 1.0}
        assert hellinger_fidelity(p, p) == pytest.approx(1.0)
        assert hellinger_fidelity(p, {"1": 1.0}) == 0.0

    def test_normalized_fidelity_anchors(self):
        ideal = {"00": 0.5, "11": 0.5}
        uniform = {k: 0.25 for k in ("00", "01", "10", "11")}
        assert normalized_fidelity(ideal, ideal, 2) == pytest.approx(1.0)
        assert normalized_fidelity(ideal, uniform, 2) == pytest.approx(0.0, abs=1e-9)

    def test_distribution_from_array_keys(self):
        dist = distribution_from_array(np.array([0.5, 0, 0, 0.5]))
        assert dist == {"00": 0.5, "11": 0.5}

    def test_average_gate_fidelity_identity(self):
        assert average_gate_fidelity(X, X) == pytest.approx(1.0)

    def test_average_gate_fidelity_small_rotation(self):
        fidelity = average_gate_fidelity(np.eye(2, dtype=complex), rz(0.1))
        assert 0.99 < fidelity < 1.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(SimulationError):
            average_gate_fidelity(np.eye(2), np.eye(4))
