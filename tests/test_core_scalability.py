"""Tests for the RFSoC scalability model (Fig 5d, Table V, Fig 17b)."""

import pytest

from repro.errors import ReproError
from repro.core import (
    RfsocModel,
    logical_qubits_supported,
    qubit_gain,
    qubits_supported,
)


class TestTableV:
    def test_ws8_gain(self):
        assert qubit_gain(8) == pytest.approx(16 / 6)  # 2.66x

    def test_ws16_gain(self):
        assert qubit_gain(16) == pytest.approx(16 / 3)  # 5.33x

    def test_qick_absolute_qubits(self):
        """Section V-C: 36 -> ~95 (WS=8) -> ~191 (WS=16)."""
        assert qubits_supported(0) == 36
        assert 90 <= qubits_supported(8) <= 100
        assert 185 <= qubits_supported(16) <= 195

    def test_gain_independent_of_multiple_ratio(self):
        """Table V holds when the clock ratio is a multiple of WS."""
        assert qubit_gain(16, clock_ratio=32) == pytest.approx(32 / 6)
        assert qubit_gain(8, clock_ratio=32) == pytest.approx(32 / 12)


class TestRfsocModel:
    def test_reference_bandwidth(self):
        """Fig 5b: max internal RFSoC bandwidth ~ 866 GB/s."""
        model = RfsocModel()
        assert model.internal_bandwidth_bytes == pytest.approx(866e9, rel=0.01)

    def test_reference_capacity(self):
        """Fig 5a: RFSoC capacity line at 7.56 MB."""
        assert RfsocModel().capacity_bytes == pytest.approx(7.56e6)

    def test_fig5d_five_x_drop(self):
        """Capacity alone supports >200 qubits; bandwidth limits to <40."""
        model = RfsocModel()
        by_capacity = model.max_qubits_capacity(bytes_per_qubit=37e3)
        by_bandwidth = model.max_qubits_bandwidth()
        assert by_capacity > 200
        assert by_bandwidth < 40
        assert by_capacity / by_bandwidth > 4.5

    def test_capacity_validation(self):
        with pytest.raises(ReproError):
            RfsocModel().max_qubits_capacity(0)


class TestLogicalQubits:
    def test_fig17b_surface17(self):
        """d=3 rotated patch: 2 -> 5 -> 11 logical qubits."""
        assert logical_qubits_supported(17, 0) == 2
        assert logical_qubits_supported(17, 8) == 5
        assert logical_qubits_supported(17, 16) == 11

    def test_fig17b_surface25(self):
        assert logical_qubits_supported(25, 0) == 1
        assert logical_qubits_supported(25, 16) == 7

    def test_gain_is_about_5x(self):
        base = logical_qubits_supported(17, 0)
        compressed = logical_qubits_supported(17, 16)
        assert compressed / base >= 5

    def test_invalid_patch_rejected(self):
        with pytest.raises(ReproError):
            logical_qubits_supported(0, 16)
