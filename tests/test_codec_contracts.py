"""Property-based contracts of the full compression codec.

Hypothesis drives randomized waveform families through the complete
compress -> decompress path, asserting the invariants every COMPAQT
configuration must satisfy regardless of pulse shape, window size or
threshold.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression import compress_waveform, decompress_waveform
from repro.pulses import Waveform, drag, gaussian_square


@st.composite
def waveforms(draw):
    """Random realistic pulse: DRAG or flat-top, arbitrary scale/shape."""
    kind = draw(st.sampled_from(["drag", "flat"]))
    if kind == "drag":
        duration = draw(st.integers(32, 320))
        amp = draw(st.floats(0.02, 0.6))
        beta = draw(st.floats(-3.0, 3.0))
        samples = drag(duration, amp, duration / 4, beta)
    else:
        duration = draw(st.integers(64, 640))
        amp = draw(st.floats(0.05, 0.8))
        width = draw(st.integers(0, duration))
        sigma = draw(st.floats(4.0, duration / 4))
        samples = gaussian_square(duration, amp, sigma, width)
    return Waveform("w", samples, dt=1 / 4.54e9, gate="x", qubits=(0,))


@st.composite
def configs(draw):
    return {
        "window_size": draw(st.sampled_from([8, 16, 32])),
        "variant": draw(st.sampled_from(["DCT-W", "int-DCT-W"])),
        "threshold": draw(st.sampled_from([0, 32, 128, 512, 2048])),
        "max_coefficients": draw(st.sampled_from([0, 1, 2, 4])),
    }


class TestCodecContracts:
    @given(waveforms(), configs())
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_preserves_geometry(self, waveform, config):
        """Length, dt, gate binding and amplitude bound always survive."""
        result = compress_waveform(waveform, **config)
        out = result.reconstructed
        assert out.n_samples == waveform.n_samples
        assert out.dt == waveform.dt
        assert out.gate == waveform.gate
        assert float(np.max(np.abs(out.samples))) <= 1.0 + 1e-9

    @given(waveforms(), configs())
    @settings(max_examples=60, deadline=None)
    def test_storage_bounds(self, waveform, config):
        """Stored words are bounded below by one codeword per window and
        above by the window size (plus codeword) -- never negative
        compression beyond the window structure."""
        result = compress_waveform(waveform, **config)
        compressed = result.compressed
        n = compressed.n_windows
        assert n >= waveform.n_samples // config["window_size"]
        assert compressed.stored_words("variable") >= n
        assert compressed.stored_words("uniform") <= n * (
            config["window_size"] + 0
        ) + n  # ws coeffs max, codeword never coexists with full window
        if config["max_coefficients"]:
            # Top-k bounds *non-zero* coefficients per window; interior
            # zeros ahead of a kept coefficient still occupy words
            # because RLE only folds the tail (hypothesis found this
            # corner -- DC-dominated library pulses never hit it).
            for channel in (compressed.i_channel, compressed.q_channel):
                for window in channel.windows:
                    nonzero = sum(1 for c in window.coeffs if c != 0)
                    assert nonzero <= config["max_coefficients"]

    @given(waveforms(), configs())
    @settings(max_examples=40, deadline=None)
    def test_decompress_is_deterministic(self, waveform, config):
        result = compress_waveform(waveform, **config)
        again = decompress_waveform(result.compressed)
        np.testing.assert_array_equal(
            result.reconstructed.samples, again.samples
        )

    @given(waveforms())
    @settings(max_examples=40, deadline=None)
    def test_zero_threshold_high_fidelity(self, waveform):
        """With no thresholding, MSE stays at the transform floor."""
        result = compress_waveform(
            waveform, window_size=16, variant="int-DCT-W", threshold=0
        )
        assert result.mse < 1e-4

    @given(waveforms(), st.sampled_from([8, 16]))
    @settings(max_examples=40, deadline=None)
    def test_mse_monotone_in_threshold(self, waveform, ws):
        """Raising the threshold cannot improve fidelity -- up to the
        transform's own distortion floor, and only over *whole* windows.
        The integer DCT is only approximately orthogonal, so some of its
        rounding noise lives in small coefficients; zeroing those can
        *reduce* MSE by up to the zero-threshold floor (hypothesis found
        such a pulse), which is why the bound is floor-relative rather
        than strict.  A zero-padded tail window breaks the property
        entirely: MSE only counts the real samples, and thresholding can
        migrate reconstruction error into the discarded pad region
        (hypothesis found a 15-sample flat-top in a 16-window whose MSE
        *drops* from 2.8e-5 to 2.1e-5 between thresholds 128 and 1024),
        so the pulse is cropped to a whole number of windows first."""
        n = max(ws, (waveform.n_samples // ws) * ws)
        samples = np.resize(waveform.samples, n)
        waveform = Waveform(
            "w", samples, dt=waveform.dt, gate="x", qubits=(0,)
        )
        floor = compress_waveform(waveform, window_size=ws, threshold=0).mse
        previous = -1.0
        for threshold in (0, 128, 1024):
            mse = compress_waveform(
                waveform, window_size=ws, threshold=threshold
            ).mse
            assert mse >= previous - max(floor, 1e-12)
            previous = mse

    @given(waveforms(), st.sampled_from([8, 16]))
    @settings(max_examples=40, deadline=None)
    def test_storage_monotone_in_threshold(self, waveform, ws):
        previous = None
        for threshold in (0, 128, 1024):
            words = compress_waveform(
                waveform, window_size=ws, threshold=threshold
            ).compressed.stored_words("variable")
            if previous is not None:
                assert words <= previous
            previous = words

    @given(waveforms())
    @settings(max_examples=30, deadline=None)
    def test_pipeline_stream_matches_codec(self, waveform):
        """The hardware model agrees with the functional codec for any
        pulse shape (not just library entries)."""
        from repro.microarch import DecompressionPipeline

        compressed = compress_waveform(waveform, window_size=16).compressed
        report = DecompressionPipeline(16).stream(compressed)
        reference = decompress_waveform(compressed)
        i_codes, q_codes = reference.to_fixed_point()
        np.testing.assert_array_equal(report.i_samples, i_codes.astype(np.int64))
        np.testing.assert_array_equal(report.q_samples, q_codes.astype(np.int64))
