"""Tests for the Section III scaling models and report helpers."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.analysis import (
    GOOGLE_PARAMS,
    IBM_PARAMS,
    bandwidth_curve,
    bandwidth_per_qubit,
    capacity_curve,
    format_number,
    memory_capacity_per_qubit,
    render_table,
    total_windows,
    window_occupancy_histogram,
)
from repro.core import CompaqtCompiler
from repro.devices import ibm_device


class TestCapacityModel:
    def test_ibm_18kb_per_qubit(self):
        """Table I: IBM needs ~18 KB of waveform memory per qubit."""
        capacity = memory_capacity_per_qubit(IBM_PARAMS)
        assert capacity == pytest.approx(18e3, rel=0.05)

    def test_google_3kb_per_qubit(self):
        """Table I: Google needs ~3 KB per qubit."""
        capacity = memory_capacity_per_qubit(GOOGLE_PARAMS)
        assert capacity == pytest.approx(3e3, rel=0.3)

    def test_coupler_overhead_scales(self):
        plain = memory_capacity_per_qubit(IBM_PARAMS)
        loaded = memory_capacity_per_qubit(IBM_PARAMS, include_couplers=True)
        assert loaded == pytest.approx(plain * IBM_PARAMS.coupler_overhead)

    def test_capacity_curve_linear(self):
        qubits, capacity = capacity_curve(IBM_PARAMS, 200)
        assert capacity[0] == 0
        assert capacity[100] == pytest.approx(capacity[200] / 2)

    def test_200_qubits_exceed_rfsoc_capacity(self):
        """Fig 5a: the IBM curve crosses 7.56 MB near 200 qubits."""
        _q, capacity = capacity_curve(IBM_PARAMS, 250)
        crossing = int(np.argmax(capacity > 7.56e6))
        assert 150 <= crossing <= 250


class TestBandwidthModel:
    def test_ibm_stream_bandwidth(self):
        """BW = fs * Ns: 4.54 GS/s x 32 bits ~ 18 GB/s per qubit."""
        assert bandwidth_per_qubit(IBM_PARAMS) == pytest.approx(18.16e9, rel=0.01)

    def test_hundred_qubits_need_terabytes(self):
        """Section I: concurrent control of 100+ qubits needs ~2 TB/s."""
        _q, bandwidth = bandwidth_curve(IBM_PARAMS, 120)
        assert bandwidth[100] > 1.5e12

    def test_invalid_qubits(self):
        with pytest.raises(ReproError):
            bandwidth_curve(IBM_PARAMS, 0)


class TestHistogram:
    @pytest.fixture(scope="class")
    def compiled(self):
        return CompaqtCompiler(window_size=16).compile_library(
            ibm_device("bogota").pulse_library()
        )

    def test_fig11_max_three_words(self, compiled):
        histogram = window_occupancy_histogram(compiled)
        assert max(histogram) <= 3

    def test_histogram_counts_all_windows(self, compiled):
        histogram = window_occupancy_histogram(compiled)
        assert sum(histogram.values()) == total_windows(compiled)

    def test_two_word_windows_dominate(self, compiled):
        """Most windows are 1 coefficient + codeword (the flat-top
        bodies of CR and readout pulses)."""
        histogram = window_occupancy_histogram(compiled)
        assert histogram[2] > histogram[3]


class TestReport:
    def test_render_basic(self):
        table = render_table("T", ["a", "bb"], [[1, 2.5], [10, 0.001]])
        assert "== T ==" in table
        assert "bb" in table

    def test_format_number(self):
        assert format_number(3) == "3"
        assert format_number(2.5) == "2.5"
        assert format_number(1.23456e-7) == "1.23e-07"
        assert format_number("x") == "x"

    def test_note_rendered(self):
        assert "note:" in render_table("T", ["a"], [[1]], note="hello")
