"""Integration tests for the ``CQN1`` network serving tier.

The contract under test: every byte served over the socket is
bit-identical to the in-process serving layer (and, through it, to the
scalar decode path), per-request errors keep the connection usable,
admission control sheds load with explicit overload replies, N clients
hammering one cold key cost exactly one cache insertion, malformed
frames close the connection cleanly without hanging the server, and a
drained server refuses new work.
"""

import asyncio
import socket
import struct
import threading
import time

import pytest

from repro.errors import ProtocolError, ServerOverloadedError, StoreError
from repro.compression.pipeline import decompress_waveform
from repro.core import CompaqtCompiler
from repro.devices import ibm_device
from repro.serve_net import (
    AsyncPulseClient,
    NetPulseServer,
    PulseClient,
    parse_address,
    protocol,
    serve_in_thread,
)
from repro.store import PulseServer, save_store


@pytest.fixture(scope="module")
def compiled():
    library = ibm_device("bogota").pulse_library()
    return CompaqtCompiler(window_size=16).compile_library(library)


@pytest.fixture(scope="module")
def store(compiled, tmp_path_factory):
    root = tmp_path_factory.mktemp("serve_net") / "bogota.cqs"
    return save_store(compiled, root, n_shards=3)


@pytest.fixture(scope="module")
def reference(store):
    """The scalar decode path: what every served byte must equal."""
    return {
        key: decompress_waveform(store.read_record(*key)).samples.tobytes()
        for key in store.keys()
    }


@pytest.fixture()
def serving(store):
    with PulseServer(store, cache_capacity=64) as server:
        yield server


@pytest.fixture()
def handle(serving):
    with serve_in_thread(serving) as running:
        yield running


class TestWireIdentity:
    def test_fetch_batch_is_bit_identical(self, handle, store, serving, reference):
        keys = store.keys()
        with PulseClient(*handle.address) as client:
            served = client.fetch_batch(keys)
        for key, waveform in zip(keys, served):
            assert waveform.samples.tobytes() == reference[key], key
            local = serving.fetch(*key)
            assert waveform.name == local.name
            assert waveform.dt == local.dt

    def test_fetch_records_match_store_bytes(self, handle, store):
        keys = store.keys()[:5]
        with PulseClient(*handle.address) as client:
            blobs = client.fetch_records(keys)
        for key, blob in zip(keys, blobs):
            assert blob == store.read_record_bytes(*key), key

    def test_single_fetch(self, handle, store, reference):
        key = store.keys()[0]
        with PulseClient(*handle.address) as client:
            waveform = client.fetch(*key)
        assert waveform.samples.tobytes() == reference[key]

    def test_async_client_is_bit_identical(self, handle, store, reference):
        keys = store.keys()[:4]

        async def _run():
            async with AsyncPulseClient(*handle.address) as client:
                batch = await client.fetch_batch(keys)
                latency = await client.ping()
                remote_keys = await client.keys()
                return batch, latency, remote_keys

        batch, latency, remote_keys = asyncio.run(_run())
        for key, waveform in zip(keys, batch):
            assert waveform.samples.tobytes() == reference[key]
        assert latency >= 0.0
        assert set(remote_keys) == set(store.keys())


class TestControlRequests:
    def test_ping_keys_stats(self, handle, store):
        with PulseClient(*handle.address) as client:
            assert client.ping() >= 0.0
            assert set(client.keys()) == set(store.keys())
            stats = client.stats()
        for field in ("requests", "fetches", "overloads", "serving"):
            assert field in stats
        assert stats["serving"]["cache"]["capacity"] == 64

    def test_unknown_key_keeps_connection_usable(self, handle, store, reference):
        good = store.keys()[0]
        with PulseClient(*handle.address) as client:
            with pytest.raises(StoreError):
                client.fetch("no-such-gate", (99,))
            # Same connection, next request serves fine.
            assert client.fetch(*good).samples.tobytes() == reference[good]
        assert handle.stats().request_errors >= 1


class TestCoalescing:
    def test_concurrent_cold_keys_insert_once(self, store):
        """N clients x one cold key -> exactly one cache insertion each."""
        keys = store.keys()[:3]
        n_clients = 6
        with PulseServer(store, cache_capacity=64) as serving:
            with serve_in_thread(serving) as handle:
                barrier = threading.Barrier(n_clients)
                errors = []

                def hammer(key):
                    try:
                        with PulseClient(*handle.address) as client:
                            barrier.wait(timeout=10)
                            client.fetch_batch([key] * 4)
                    except Exception as exc:  # pragma: no cover - surfaced below
                        errors.append(exc)

                for key in keys:
                    barrier.reset()
                    threads = [
                        threading.Thread(target=hammer, args=(key,))
                        for _ in range(n_clients)
                    ]
                    for t in threads:
                        t.start()
                    for t in threads:
                        t.join(timeout=30)
                assert not errors
                cache = serving.stats().cache
                assert cache.insertions == len(keys)


class TestAdmissionControl:
    def test_overload_is_explicit_and_bounded(self, store):
        release = threading.Event()
        started = threading.Event()
        with PulseServer(store, cache_capacity=8) as serving:
            real_fetch_batch = serving.fetch_batch

            def slow_fetch_batch(keys):
                started.set()
                assert release.wait(timeout=30)
                return real_fetch_batch(keys)

            serving.fetch_batch = slow_fetch_batch
            key = store.keys()[0]
            with serve_in_thread(serving, max_inflight=1) as handle:
                blocked = PulseClient(*handle.address)
                result = {}

                def occupy():
                    result["pulse"] = blocked.fetch(*key)

                thread = threading.Thread(target=occupy)
                thread.start()
                try:
                    assert started.wait(timeout=10)
                    with PulseClient(*handle.address) as client:
                        # Fetch past the bound: shed, never queued.
                        with pytest.raises(ServerOverloadedError):
                            client.fetch(*key)
                        # Control requests are exempt from admission.
                        assert client.ping() >= 0.0
                        assert client.stats()["overloads"] >= 1
                finally:
                    release.set()
                    thread.join(timeout=30)
                blocked.close()
                assert "pulse" in result  # the in-flight request completed
                assert handle.stats().overloads >= 1

    def test_max_inflight_validated(self, serving):
        with pytest.raises(StoreError):
            NetPulseServer(serving, max_inflight=0)


class TestProtocolDamage:
    """Socket-level fuzz against a live server: close cleanly, never hang."""

    def _raw(self, handle):
        sock = socket.create_connection(handle.address, timeout=10)
        sock.settimeout(10)
        return sock

    def _read_reply(self, sock):
        header = b""
        while len(header) < 4:
            chunk = sock.recv(4 - len(header))
            if not chunk:
                return None
            header += chunk
        length = protocol.parse_frame_length(header)
        payload = b""
        while len(payload) < length:
            chunk = sock.recv(length - len(payload))
            if not chunk:
                return None
            payload += chunk
        return protocol.decode_reply(payload)

    def _assert_closed(self, sock):
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            chunk = sock.recv(4096)
            if not chunk:
                return
        pytest.fail("server did not close the damaged connection")

    def test_oversized_length_prefix_closes(self, handle):
        with self._raw(handle) as sock:
            sock.sendall(struct.pack("<I", 0xFFFFFFFF))
            reply = self._read_reply(sock)
            if reply is not None:  # best-effort error reply before close
                assert reply.status == protocol.STATUS_ERROR
                self._assert_closed(sock)
        assert handle.stats().protocol_errors >= 1

    def test_zero_length_frame_closes(self, handle):
        with self._raw(handle) as sock:
            sock.sendall(struct.pack("<I", 0))
            reply = self._read_reply(sock)
            if reply is not None:
                assert reply.status == protocol.STATUS_ERROR
                self._assert_closed(sock)

    def test_unknown_message_type_closes(self, handle):
        with self._raw(handle) as sock:
            sock.sendall(protocol.frame(bytes([0x7E])))
            reply = self._read_reply(sock)
            if reply is not None:
                assert reply.status == protocol.STATUS_ERROR
                self._assert_closed(sock)

    def test_truncated_fetch_body_closes(self, handle):
        good = protocol.encode_fetch([("sx", (0,))])
        torn = good[: len(good) - 3]
        # Re-frame the torn payload so the length prefix is honest.
        with self._raw(handle) as sock:
            sock.sendall(protocol.frame(torn[4:]))
            reply = self._read_reply(sock)
            if reply is not None:
                assert reply.status == protocol.STATUS_ERROR
                self._assert_closed(sock)

    def test_torn_length_prefix_counts(self, handle):
        before = handle.stats().protocol_errors
        with self._raw(handle) as sock:
            sock.sendall(b"\x01\x02")  # half a length prefix, then hang up
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            if handle.stats().protocol_errors > before:
                break
            time.sleep(0.01)
        assert handle.stats().protocol_errors > before

    def test_clean_eof_is_not_an_error(self, handle):
        before = handle.stats().protocol_errors
        with self._raw(handle) as sock:
            sock.sendall(protocol.encode_ping())
            reply = self._read_reply(sock)
            assert reply is not None and reply.status == protocol.STATUS_OK
        time.sleep(0.05)
        assert handle.stats().protocol_errors == before

    def test_server_survives_damage(self, handle, store, reference):
        """After all of the above, the server still serves correctly."""
        key = store.keys()[0]
        with PulseClient(*handle.address) as client:
            assert client.fetch(*key).samples.tobytes() == reference[key]


class TestDrain:
    def test_stopped_server_refuses_connections(self, serving):
        handle = serve_in_thread(serving)
        address = handle.address
        with PulseClient(*address) as client:
            assert client.ping() >= 0.0
        handle.stop()
        with pytest.raises(StoreError):
            PulseClient(*address).connect()

    def test_stop_is_idempotent(self, serving):
        handle = serve_in_thread(serving)
        handle.stop()
        handle.stop()


class TestParseAddress:
    def test_accepted_forms(self):
        assert parse_address(("localhost", 9000)) == ("localhost", 9000)
        assert parse_address("localhost:9000") == ("localhost", 9000)
        assert parse_address("localhost", 9000) == ("localhost", 9000)
        assert parse_address("::1:9000") == ("::1", 9000)

    def test_rejected_forms(self):
        with pytest.raises(StoreError):
            parse_address("localhost")
        with pytest.raises(StoreError):
            parse_address("localhost:http")
        with pytest.raises(StoreError):
            parse_address(("localhost",))
        with pytest.raises(StoreError):
            parse_address(123, 9000)


class TestClientRobustness:
    def test_client_redials_after_protocol_error(self, handle, store, reference):
        key = store.keys()[0]
        client = PulseClient(*handle.address)
        try:
            assert client.fetch(*key).samples.tobytes() == reference[key]
            # Sabotage the live socket so the next read sees a dead peer.
            client._sock.close()
            with pytest.raises((ProtocolError, StoreError, OSError)):
                client.fetch(*key)
            # The client dropped the broken connection; this redials.
            assert client.fetch(*key).samples.tobytes() == reference[key]
        finally:
            client.close()


class _BlockingStore:
    """Test double: every batch decode parks on a gate (fault hook, not sleep)."""

    def __init__(self, store, started, release):
        self._store = store
        self._started = started
        self._release = release

    def __getattr__(self, name):
        return getattr(self._store, name)

    def decode_many(self, requests):
        self._started.set()
        assert self._release.wait(timeout=10), "gate never released"
        return self._store.decode_many(requests)


class _KeyGateStore:
    """Test double: shard routing for one gate name parks until released."""

    def __init__(self, store, gate_name, release):
        self._store = store
        self._gate_name = gate_name
        self._release = release

    def __getattr__(self, name):
        return getattr(self._store, name)

    def shard_of(self, gate, qubits):
        if gate == self._gate_name:
            assert self._release.wait(timeout=10), "gate never released"
        return self._store.shard_of(gate, qubits)


class TestCoalescingFailureScope:
    def test_bad_key_does_not_poison_coalesced_valid_key(self, store, reference):
        """A batch failing on one bad key must not fail a concurrent
        request coalesced onto a *valid* key in the same batch.

        Regression: the batch's exception used to fan out to every
        owned in-flight future, so the coalesced valid-only request
        failed spuriously.
        """
        valid = store.keys()[0]
        bad = ("no-such-gate", (99,))
        gate = threading.Event()
        gated = _KeyGateStore(store, "no-such-gate", gate)

        async def _run():
            with PulseServer(gated, cache_capacity=64) as serving:
                server = NetPulseServer(serving)
                await server.start()
                try:
                    mixed = protocol.FetchRequest(
                        mode=protocol.MODE_SAMPLES, keys=(valid, bad)
                    )
                    valid_only = protocol.FetchRequest(
                        mode=protocol.MODE_SAMPLES, keys=(valid,)
                    )
                    task_mixed = asyncio.create_task(server._serve_fetch(mixed))
                    # The mixed batch is parked inside shard routing on
                    # the executor; its event-loop futures exist now.
                    while valid not in server._inflight_keys:
                        await asyncio.sleep(0.001)
                    task_valid = asyncio.create_task(
                        server._serve_fetch(valid_only)
                    )
                    while server.stats().coalesced_keys < 1:
                        await asyncio.sleep(0.001)
                    gate.set()  # the batch now fails on the bad key

                    reply = await task_valid  # must NOT be poisoned
                    decoded = protocol.decode_reply(reply[4:])
                    assert decoded.status == protocol.STATUS_OK
                    waveform = protocol.decode_samples_item(
                        decoded.items[0], *valid
                    )
                    assert waveform.samples.tobytes() == reference[valid]

                    with pytest.raises(StoreError, match="no pulse"):
                        await task_mixed
                finally:
                    await server.aclose(drain_timeout=1.0)

        asyncio.run(_run())


class TestDrainRacesInflight:
    def test_drain_waits_for_inflight_coalesced_fetch(self, store, reference):
        """aclose() must let a parked in-flight fetch finish, not drop it."""
        key = store.keys()[0]
        started, release = threading.Event(), threading.Event()
        gated = _BlockingStore(store, started, release)
        result = {}
        with PulseServer(gated, cache_capacity=64) as serving:
            handle = serve_in_thread(serving)

            def client():
                with PulseClient(*handle.address) as c:
                    result["waveform"] = c.fetch(*key)

            fetcher = threading.Thread(target=client)
            fetcher.start()
            try:
                assert started.wait(10)  # the fetch is parked in its fill
                stopper = threading.Thread(target=handle.stop)
                stopper.start()
                deadline = time.monotonic() + 10
                while not handle.stats().draining:
                    assert time.monotonic() < deadline, "drain never started"
                    time.sleep(0.005)
                release.set()  # drain is racing the fill; let it finish
                stopper.join(timeout=15)
                assert not stopper.is_alive()
            finally:
                release.set()
                fetcher.join(timeout=10)
            assert result["waveform"].samples.tobytes() == reference[key]


class TestSendFailureMidReply:
    def test_reply_to_dead_peer_drops_only_that_connection(
        self, store, reference
    ):
        """_best_effort_send failing must not take the server down."""
        key = store.keys()[0]
        with PulseServer(store, cache_capacity=64) as serving:
            with serve_in_thread(serving) as handle:
                before = handle.stats().fetches
                sock = socket.create_connection(handle.address, timeout=10)
                sock.sendall(protocol.encode_fetch([key]))
                # Abortive close (RST on close): the server's reply
                # write fails mid-send instead of buffering.
                sock.setsockopt(
                    socket.SOL_SOCKET,
                    socket.SO_LINGER,
                    struct.pack("ii", 1, 0),
                )
                sock.close()
                deadline = time.monotonic() + 10
                while handle.stats().fetches <= before:
                    assert time.monotonic() < deadline, "fetch never served"
                    time.sleep(0.01)
                # The dead peer cost nothing but its own connection.
                with PulseClient(*handle.address) as client:
                    assert client.fetch(*key).samples.tobytes() == reference[key]


class TestFrameTimeoutExpiry:
    def test_half_sent_frame_expires_as_protocol_error(self, store):
        """A frame that never completes times out typed, without a hang."""
        with PulseServer(store, cache_capacity=8) as serving:
            with serve_in_thread(serving, frame_timeout=0.2) as handle:
                before = handle.stats().protocol_errors
                full = protocol.encode_fetch([store.keys()[0]])
                with socket.create_connection(handle.address, timeout=10) as sock:
                    sock.settimeout(10)
                    sock.sendall(full[:-3])  # length prefix + torn payload
                    header = b""
                    while len(header) < 4:
                        chunk = sock.recv(4 - len(header))
                        if not chunk:
                            break
                        header += chunk
                    if len(header) == 4:
                        length = protocol.parse_frame_length(header)
                        payload = b""
                        while len(payload) < length:
                            chunk = sock.recv(length - len(payload))
                            if not chunk:
                                break
                            payload += chunk
                        reply = protocol.decode_reply(payload)
                        assert reply.status == protocol.STATUS_ERROR
                        assert "did not complete" in reply.message
                assert handle.stats().protocol_errors > before

    def test_frame_timeout_validated(self, serving):
        with pytest.raises(StoreError, match="frame_timeout"):
            NetPulseServer(serving, frame_timeout=0.0)
