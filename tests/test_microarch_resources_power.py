"""Tests for the FPGA resource/timing and ASIC power models."""

import pytest

from repro.errors import ReproError
from repro.microarch import (
    ClockModel,
    CryoControllerPower,
    QICK_BASELINE_RESOURCES,
    SramModel,
    ZCU7EV_TOTALS,
    idct_resources,
)


class TestResources:
    def test_counts_grow_with_window(self):
        r8 = idct_resources(8)
        r16 = idct_resources(16)
        r32 = idct_resources(32)
        assert r8.luts < r16.luts < r32.luts
        assert r8.flipflops < r16.flipflops < r32.flipflops

    def test_table_viii_bands(self):
        """Table VIII: 601/1954/9063 LUTs for WS=8/16/32.  Our model is
        derived from our own op counts; accept a 2x band."""
        assert 300 <= idct_resources(8).luts <= 1300
        assert 1000 <= idct_resources(16).luts <= 4000
        assert 4000 <= idct_resources(32).luts <= 18000

    def test_engine_smaller_than_baseline_until_ws32(self):
        """Table VIII: WS=8/16 engines are much smaller than the QICK
        baseline; WS=32 overtakes it (the sub-optimal design point)."""
        assert idct_resources(8).luts < QICK_BASELINE_RESOURCES.luts
        assert idct_resources(16).luts < QICK_BASELINE_RESOURCES.luts
        assert idct_resources(32).luts > QICK_BASELINE_RESOURCES.luts

    def test_utilization_under_5_percent(self):
        """Table VIII: every engine uses <4% of the zc7u7ev."""
        for ws in (8, 16, 32):
            lut_pct, ff_pct = idct_resources(ws).utilization(ZCU7EV_TOTALS)
            assert lut_pct < 5.0
            assert ff_pct < 1.0

    def test_invalid_width_rejected(self):
        with pytest.raises(ReproError):
            idct_resources(8, datapath_bits=0)


class TestClockModel:
    def test_fig16_ordering(self):
        """DCT-W(8) << int-DCT-W(32) < int(16) <= int(8) < baseline."""
        clock = ClockModel()
        f_dctw8 = clock.normalized_fmax(8, "DCT-W")
        f_int8 = clock.normalized_fmax(8)
        f_int16 = clock.normalized_fmax(16)
        f_int32 = clock.normalized_fmax(32)
        assert f_dctw8 < f_int32 < f_int16 <= f_int8 < 1.0

    def test_fig16_bands(self):
        clock = ClockModel()
        assert clock.normalized_fmax(8, "DCT-W") == pytest.approx(0.67, abs=0.12)
        assert clock.normalized_fmax(8) == pytest.approx(0.92, abs=0.08)
        assert clock.normalized_fmax(16) == pytest.approx(0.90, abs=0.08)
        assert clock.normalized_fmax(32) == pytest.approx(0.83, abs=0.08)

    def test_pipelined_restores_baseline(self):
        clock = ClockModel()
        assert clock.normalized_fmax(16, pipelined=True) == 1.0

    def test_fmax_never_exceeds_baseline(self):
        clock = ClockModel()
        for ws in (8, 16, 32):
            assert clock.fmax_hz(ws) <= clock.baseline_fmax_hz


class TestSramModel:
    def test_energy_grows_with_capacity(self):
        sram = SramModel()
        assert sram.read_energy_pj(1e3) < sram.read_energy_pj(18e3)

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ReproError):
            SramModel().read_energy_pj(0)


class TestCryoPower:
    def test_fig18_baseline_level(self):
        """Uncompressed controller: ~16 mW (14 memory + 2 DAC)."""
        power = CryoControllerPower().uncompressed()
        assert power.total_mw == pytest.approx(16.0, abs=3.0)
        assert power.memory_mw > 10
        assert power.idct_mw == 0

    def test_fig18_compression_reduction(self):
        """COMPAQT at WS=16: >2.5x total power reduction."""
        model = CryoControllerPower()
        baseline = model.uncompressed()
        ws16 = model.compaqt(compression_ratio=16 / 3, window_size=16)
        assert baseline.total_mw / ws16.total_mw > 2.5

    def test_memory_power_reduction_over_3x(self):
        """Section V: waveform-memory power alone drops >3x."""
        model = CryoControllerPower()
        baseline = model.uncompressed()
        ws16 = model.compaqt(compression_ratio=16 / 3, window_size=16)
        assert baseline.memory_mw / ws16.memory_mw > 3.0

    def test_idct_overhead_does_not_overshadow(self):
        """Fig 18's point: the IDCT engine costs far less than the
        memory power it saves."""
        model = CryoControllerPower()
        ws16 = model.compaqt(compression_ratio=16 / 3, window_size=16)
        saved = model.uncompressed().memory_mw - ws16.memory_mw
        assert ws16.idct_mw < saved / 2

    def test_fig19_adaptive_reduction_about_4x(self):
        """Adaptive decompression on a flat-top: ~4x total reduction."""
        model = CryoControllerPower()
        baseline = model.uncompressed()
        adaptive = model.compaqt(
            compression_ratio=16 / 3,
            window_size=16,
            memory_duty=0.3,
            idct_duty=0.3,
        )
        assert baseline.total_mw / adaptive.total_mw > 3.2

    def test_duty_validation(self):
        with pytest.raises(ReproError):
            CryoControllerPower().compaqt(5.0, 16, idct_duty=1.5)

    def test_ratio_validation(self):
        with pytest.raises(ReproError):
            CryoControllerPower().compaqt(0.5, 16)

    def test_breakdown_total(self):
        power = CryoControllerPower().uncompressed()
        assert power.total_mw == pytest.approx(
            power.dac_mw + power.memory_mw + power.idct_mw
        )
