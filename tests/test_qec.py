"""Tests for surface-code patches and syndrome extraction (Fig 17a)."""

import pytest

from repro.errors import ReproError
from repro.qec import (
    patch_coupling_map,
    peak_concurrent_fraction,
    rotated_surface_code,
    syndrome_circuit,
    syndrome_schedule,
    unrotated_surface_code,
)


class TestPatchConstruction:
    def test_surface_17(self):
        patch = rotated_surface_code(3)
        assert patch.n_qubits == 17
        assert patch.n_data == 9
        assert patch.n_ancilla == 8
        assert len(patch.x_stabilizers) == 4
        assert len(patch.z_stabilizers) == 4

    def test_surface_25(self):
        patch = unrotated_surface_code(3)
        assert patch.n_qubits == 25
        assert patch.n_data == 13
        assert patch.n_ancilla == 12

    def test_surface_81(self):
        patch = unrotated_surface_code(5)
        assert patch.n_qubits == 81
        assert patch.n_data == 41
        assert patch.n_ancilla == 40

    def test_stabilizer_weights(self):
        patch = rotated_surface_code(3)
        weights = sorted(s.weight for s in patch.stabilizers)
        assert weights == [2, 2, 2, 2, 4, 4, 4, 4]

    def test_bulk_weights_grow_with_distance(self):
        patch = unrotated_surface_code(5)
        assert max(s.weight for s in patch.stabilizers) == 4
        assert min(s.weight for s in patch.stabilizers) >= 2

    def test_every_data_qubit_checked(self):
        patch = rotated_surface_code(3)
        covered = set()
        for stab in patch.stabilizers:
            covered.update(d for d in stab.data if d is not None)
        assert covered == set(patch.data_qubits)

    def test_couplings_form_connected_lattice(self):
        patch = unrotated_surface_code(3)
        assert patch_coupling_map(patch).is_connected()

    def test_invalid_distance(self):
        with pytest.raises(ReproError):
            rotated_surface_code(1)


class TestSyndromeCircuit:
    def test_cnot_count_equals_total_weight(self):
        patch = rotated_surface_code(3)
        circuit = syndrome_circuit(patch)
        total_weight = sum(s.weight for s in patch.stabilizers)
        assert circuit.cx_count == total_weight  # 24 for surface-17

    def test_hadamards_bracket_x_checks(self):
        patch = rotated_surface_code(3)
        circuit = syndrome_circuit(patch)
        assert circuit.count_ops()["h"] == 2 * len(patch.x_stabilizers)

    def test_all_ancillas_measured(self):
        patch = unrotated_surface_code(3)
        circuit = syndrome_circuit(patch)
        measured = [i for i in circuit.instructions if i.name == "measure"]
        assert len(measured[0].qubits) == patch.n_ancilla

    def test_local_after_transpilation(self):
        """The syndrome circuit routes with zero SWAP insertion."""
        from repro.circuits import transpile

        patch = rotated_surface_code(3)
        routed = transpile(syndrome_circuit(patch), patch_coupling_map(patch))
        assert routed.cx_count == syndrome_circuit(patch).cx_count


class TestConcurrency:
    def test_peak_fraction_over_80_percent(self):
        """Paper: >80% of the patch is driven concurrently."""
        assert peak_concurrent_fraction(rotated_surface_code(3)) > 0.8
        assert peak_concurrent_fraction(unrotated_surface_code(3)) > 0.8

    def test_peak_gates_scale_with_patch(self):
        small = syndrome_schedule(rotated_surface_code(3))
        large = syndrome_schedule(unrotated_surface_code(5))
        assert large.peak_concurrent_gates > small.peak_concurrent_gates

    def test_qec_average_near_peak(self):
        """Fig 5c: surface-code bandwidth stays near peak all cycle."""
        schedule = syndrome_schedule(unrotated_surface_code(5))
        ratio = (
            schedule.average_bandwidth_bytes() / schedule.peak_bandwidth_bytes()
        )
        assert ratio > 0.6
