"""Tests for the CQS2 writable store: staging, atomic commit, crash
recovery at every hook point, manifest fuzzing, snapshot adoption, and
the scrub tool."""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError, StoreError
from repro.core import CompaqtCompiler
from repro.devices import ibm_device
from repro.store import (
    COMMIT_HOOK_POINTS,
    COMPACT_HOOK_POINTS,
    MANIFEST_NAME,
    PulseCache,
    PulseServer,
    ShardedStore,
    StoreWriter,
    atomic_write,
    generation_manifest_name,
    open_store,
    save_store,
    verify_store,
)
from repro.store.hooks import set_preempt_hook
from repro.store.sharded import list_generation_manifests
from repro.store.verify import format_report


@pytest.fixture(scope="module")
def compiled():
    library = ibm_device("bogota").pulse_library()
    return CompaqtCompiler(window_size=16).compile_library(library)


@pytest.fixture()
def store_dir(compiled, tmp_path):
    root = tmp_path / "bogota.cqs"
    save_store(compiled, root, n_shards=3).close()
    return root


def _recalibrated(store, key, roll=1, scale=0.9):
    """A CompressionResult for ``key`` with recognizably new samples."""
    waveform = store.decode_many([key])[0]
    return CompaqtCompiler().compile_waveform(
        waveform.with_samples(np.roll(waveform.samples, roll) * scale)
    )


class _Crash(Exception):
    """Injected abort; deliberately NOT a ReproError, like a real crash."""


class _crash_at:
    """Raise _Crash the Nth time ``point`` fires (1-based)."""

    def __init__(self, point, occurrence=1):
        self.point = point
        self.occurrence = occurrence
        self._seen = 0

    def __enter__(self):
        def hook(point):
            if point == self.point:
                self._seen += 1
                if self._seen == self.occurrence:
                    raise _Crash(point)

        self._previous = set_preempt_hook(hook)
        return self

    def __exit__(self, *exc_info):
        set_preempt_hook(self._previous)


class TestAtomicWrite:
    def test_publishes_bytes_and_str(self, tmp_path):
        target = tmp_path / "blob.json"
        assert atomic_write(target, b"{}\n") == target
        assert target.read_bytes() == b"{}\n"
        atomic_write(target, "overwritten\n")
        assert target.read_text() == "overwritten\n"

    def test_leaves_no_temp_files(self, tmp_path):
        atomic_write(tmp_path / "a.txt", b"x", fsync=False)
        assert [p.name for p in tmp_path.iterdir()] == ["a.txt"]


class TestStaging:
    def test_put_rejects_mismatched_binding(self, store_dir):
        with StoreWriter(store_dir) as writer:
            key = writer.store.keys()[0]
            other = writer.store.keys()[1]
            result = _recalibrated(writer.store, other)
            with pytest.raises(StoreError, match="bound to"):
                writer.put(key[0], key[1], result)

    def test_delete_unknown_key_raises(self, store_dir):
        with StoreWriter(store_dir) as writer:
            with pytest.raises(StoreError, match="no pulse"):
                writer.delete("no-such-gate", (0,))

    def test_delete_unstages_a_put(self, store_dir):
        with StoreWriter(store_dir) as writer:
            key = writer.store.keys()[0]
            writer.put(key[0], key[1], _recalibrated(writer.store, key))
            assert writer.pending == 1
            writer.delete(*key)
            # The key exists in the base, so the delete still tombstones.
            assert writer.pending == 1

    def test_discard_and_noop_commit(self, store_dir):
        with StoreWriter(store_dir) as writer:
            key = writer.store.keys()[0]
            writer.put(key[0], key[1], _recalibrated(writer.store, key))
            writer.discard_pending()
            assert writer.pending == 0
            same = writer.commit()
            assert same.generation == 0


class TestCommit:
    def test_update_bumps_generation_and_version(self, store_dir):
        with StoreWriter(store_dir) as writer:
            key = writer.store.keys()[0]
            result = _recalibrated(writer.store, key)
            writer.put(key[0], key[1], result)
            fresh = writer.commit()
            assert fresh.generation == 1
            assert fresh.record_info(*key).version == 2
            got = fresh.decode_many([key])[0]
            assert np.array_equal(got.samples, result.reconstructed.samples)

    def test_readers_keep_their_snapshot(self, store_dir):
        old = ShardedStore.open(store_dir)
        key = old.keys()[0]
        before = old.decode_many([key])[0]
        with StoreWriter(store_dir) as writer:
            writer.put(key[0], key[1], _recalibrated(writer.store, key))
            writer.commit()
        # The pinned reader still serves the old bytes, bit for bit.
        again = old.decode_many([key])[0]
        assert np.array_equal(again.samples, before.samples)
        assert old.generation == 0
        old.close()

    def test_delete_tombstones_and_resurrect_bumps(self, store_dir):
        with StoreWriter(store_dir) as writer:
            key = writer.store.keys()[0]
            resurrection = _recalibrated(writer.store, key)
            writer.delete(*key)
            gone = writer.commit()
            assert key not in gone
            assert gone.tombstones[key] == 2
            with pytest.raises(StoreError):
                gone.record_info(*key)
            writer.put(key[0], key[1], resurrection)
            back = writer.commit()
            assert back.record_info(*key).version == 3
            assert back.tombstones == {}

    def test_base_shards_never_rewritten(self, store_dir):
        shard_bytes = {
            p.name: p.read_bytes() for p in store_dir.glob("shard-*.cql")
        }
        with StoreWriter(store_dir) as writer:
            key = writer.store.keys()[0]
            writer.put(key[0], key[1], _recalibrated(writer.store, key))
            writer.commit()
        for name, data in shard_bytes.items():
            assert (store_dir / name).read_bytes() == data

    def test_load_library_on_a_generation(self, store_dir):
        with StoreWriter(store_dir) as writer:
            keys = writer.store.keys()
            writer.put(keys[0][0], keys[0][1], _recalibrated(writer.store, keys[0]))
            writer.delete(*keys[1])
            fresh = writer.commit()
            library = fresh.load_library()
            assert len(library) == len(keys) - 1


class TestCompact:
    def test_requires_clean_slate(self, store_dir):
        with StoreWriter(store_dir) as writer:
            key = writer.store.keys()[0]
            writer.put(key[0], key[1], _recalibrated(writer.store, key))
            with pytest.raises(StoreError, match="commit or discard"):
                writer.compact()

    def test_drops_dead_bytes_preserves_content(self, store_dir):
        with StoreWriter(store_dir) as writer:
            keys = writer.store.keys()
            writer.put(keys[0][0], keys[0][1], _recalibrated(writer.store, keys[0]))
            writer.delete(*keys[1])
            before = writer.commit()
            expect = {
                key: before.decode_many([key])[0].samples
                for key in before.keys()
            }
            versions = {key: before.record_info(*key).version for key in expect}
            compacted = writer.compact()
            assert compacted.generation == before.generation + 1
            assert compacted.tombstones == {}
            assert compacted.shard_count == compacted.n_shards
            for key, samples in expect.items():
                assert np.array_equal(
                    compacted.decode_many([key])[0].samples, samples
                )
                assert compacted.record_info(*key).version == versions[key]
        assert verify_store(store_dir).ok


class TestCrashRecovery:
    """Abort the protocol at every yield point; reopen must be exactly
    the old or the new generation, bit-identical either way."""

    @pytest.mark.parametrize("point", COMMIT_HOOK_POINTS)
    def test_commit_crash_at_every_point(self, store_dir, point):
        base = ShardedStore.open(store_dir)
        keys = base.keys()
        old_samples = {
            key: base.decode_many([key])[0].samples for key in keys
        }
        base.close()

        writer = StoreWriter(store_dir)
        update_key, delete_key = keys[0], keys[1]
        result = _recalibrated(writer.store, update_key)
        writer.put(update_key[0], update_key[1], result)
        writer.delete(*delete_key)
        with _crash_at(point):
            with pytest.raises(_Crash):
                writer.commit()
        writer.close()

        reopened = ShardedStore.open(store_dir)
        assert reopened.generation in (0, 1)
        if reopened.generation == 0:
            # The old world, untouched.
            for key in keys:
                got = reopened.decode_many([key])[0]
                assert np.array_equal(got.samples, old_samples[key])
        else:
            # The new world, complete: update visible, delete applied.
            got = reopened.decode_many([update_key])[0]
            assert np.array_equal(got.samples, result.reconstructed.samples)
            assert delete_key not in reopened
        reopened.close()

        # A resynced writer commits cleanly on whatever survived.
        with StoreWriter(store_dir) as healed:
            key = healed.store.keys()[0]
            healed.put(key[0], key[1], _recalibrated(healed.store, key, roll=2))
            healed.commit()
        assert verify_store(store_dir).ok

    @pytest.mark.parametrize("point", COMPACT_HOOK_POINTS)
    def test_compact_crash_at_every_point(self, store_dir, point):
        writer = StoreWriter(store_dir)
        key = writer.store.keys()[0]
        writer.put(key[0], key[1], _recalibrated(writer.store, key))
        committed = writer.commit()
        expect = {
            k: committed.decode_many([k])[0].samples for k in committed.keys()
        }
        with _crash_at(point):
            with pytest.raises(_Crash):
                writer.compact()
        writer.close()

        reopened = ShardedStore.open(store_dir)
        assert reopened.generation in (1, 2)
        # Compaction moves bytes, never content: both outcomes serve
        # identical samples.
        for k, samples in expect.items():
            assert np.array_equal(reopened.decode_many([k])[0].samples, samples)
        reopened.close()
        assert verify_store(store_dir).ok

    def test_torn_manifest_falls_back_to_parent(self, store_dir):
        with StoreWriter(store_dir) as writer:
            key = writer.store.keys()[0]
            writer.put(key[0], key[1], _recalibrated(writer.store, key))
            writer.commit()
            writer.put(key[0], key[1], _recalibrated(writer.store, key, roll=2))
            writer.commit()
        newest = list_generation_manifests(store_dir)[0][1]
        data = newest.read_bytes()
        newest.write_bytes(data[: len(data) // 2])
        reopened = ShardedStore.open(store_dir)
        assert reopened.generation == 1
        reopened.close()

    def test_orphan_debris_is_ignored_and_swept(self, store_dir):
        (store_dir / "manifest-0000000009.json.tmp-12345").write_bytes(b"{")
        (store_dir / "shard-g0000000042.cql").write_bytes(b"garbage")
        reopened = ShardedStore.open(store_dir)
        assert reopened.generation == 0
        reopened.close()
        with StoreWriter(store_dir) as writer:
            key = writer.store.keys()[0]
            writer.put(key[0], key[1], _recalibrated(writer.store, key))
            writer.commit()
        # The commit's sweep retires both pieces of debris.
        assert not list(store_dir.glob("*.tmp-*"))
        assert not (store_dir / "shard-g0000000042.cql").exists()

    def test_unopenable_everything_raises_typed(self, store_dir):
        (store_dir / MANIFEST_NAME).write_text("not json")
        with pytest.raises(StoreError):
            ShardedStore.open(store_dir)


def _committed_manifest(store_dir):
    """One real CQS2 manifest (dict) plus its generation path."""
    with StoreWriter(store_dir) as writer:
        key = writer.store.keys()[0]
        writer.put(key[0], key[1], _recalibrated(writer.store, key))
        fresh = writer.commit()
    path = store_dir / generation_manifest_name(fresh.generation)
    return json.loads(path.read_text()), path


class TestManifestFuzz:
    """Hostile CQS2 manifests: anything invalid must raise StoreError
    (and only StoreError); benign variation must still open."""

    def test_unknown_fields_are_tolerated(self, store_dir):
        manifest, path = _committed_manifest(store_dir)
        manifest["x-future-extension"] = {"anything": [1, 2, 3]}
        manifest["entries"][0]["x-note"] = "tolerated"
        path.write_text(json.dumps(manifest))
        fresh = ShardedStore.open(store_dir)
        assert fresh.generation == 1
        fresh.close()

    def test_generation_gaps_are_tolerated(self, store_dir):
        manifest, path = _committed_manifest(store_dir)
        manifest["generation"] = 7
        (store_dir / generation_manifest_name(7)).write_text(
            json.dumps(manifest)
        )
        path.unlink()
        fresh = ShardedStore.open(store_dir)
        assert fresh.generation == 7
        fresh.close()
        report = verify_store(store_dir)
        assert report.ok  # gaps are advisory
        assert report.chain_gaps

    def test_duplicate_entry_keys_raise(self, store_dir):
        manifest, path = _committed_manifest(store_dir)
        manifest["entries"].append(dict(manifest["entries"][0]))
        manifest["n_entries"] += 1
        path.write_text(json.dumps(manifest))
        # The torn-write fallback opens the parent instead; force the
        # single-candidate path by removing the fallbacks.
        (store_dir / MANIFEST_NAME).unlink()
        with pytest.raises(StoreError, match="duplicate"):
            ShardedStore.open(store_dir)

    def test_tombstone_colliding_with_live_entry_raises(self, store_dir):
        manifest, path = _committed_manifest(store_dir)
        first = manifest["entries"][0]
        manifest["tombstones"].append(
            {"gate": first["gate"], "qubits": first["qubits"], "version": 9}
        )
        path.write_text(json.dumps(manifest))
        (store_dir / MANIFEST_NAME).unlink()
        with pytest.raises(StoreError):
            ShardedStore.open(store_dir)

    @settings(max_examples=40, deadline=None)
    @given(data=st.data())
    def test_mutated_manifests_fail_typed_or_open(
        self, tmp_path_factory, compiled, data
    ):
        root = tmp_path_factory.mktemp("fuzz") / "bogota.cqs"
        save_store(compiled, root, n_shards=2).close()
        manifest, path = _committed_manifest(root)

        mutation = data.draw(
            st.sampled_from(
                [
                    "unknown_field",
                    "bad_version",
                    "bad_generation",
                    "bad_shard",
                    "bad_span",
                    "dup_entry",
                    "dup_tombstone",
                    "stale_tombstone",
                    "wrong_count",
                    "truncate_json",
                ]
            )
        )
        if mutation == "unknown_field":
            manifest[data.draw(st.text(min_size=1, max_size=8))] = data.draw(
                st.integers()
            )
        elif mutation == "bad_version":
            manifest["entries"][0]["version"] = data.draw(
                st.integers(max_value=0)
            )
        elif mutation == "bad_generation":
            manifest["generation"] = data.draw(st.integers(max_value=0))
        elif mutation == "bad_shard":
            manifest["entries"][0]["shard"] = data.draw(
                st.integers(min_value=len(manifest["shards"]))
            )
        elif mutation == "bad_span":
            manifest["entries"][0]["offset"] = data.draw(
                st.integers(min_value=10**9)
            )
        elif mutation == "dup_entry":
            manifest["entries"].append(dict(manifest["entries"][0]))
            manifest["n_entries"] += 1
        elif mutation == "dup_tombstone":
            manifest["tombstones"] = [
                {"gate": "zz", "qubits": [0], "version": 1},
                {"gate": "zz", "qubits": [0], "version": 2},
            ]
        elif mutation == "stale_tombstone":
            first = manifest["entries"][0]
            manifest["tombstones"] = [
                {
                    "gate": first["gate"],
                    "qubits": first["qubits"],
                    "version": 1,
                }
            ]
        elif mutation == "wrong_count":
            manifest["n_entries"] += data.draw(
                st.integers(min_value=1, max_value=5)
            )
        blob = json.dumps(manifest)
        if mutation == "truncate_json":
            blob = blob[: data.draw(st.integers(min_value=0, max_value=len(blob) - 1))]
        path.write_text(blob)
        (root / MANIFEST_NAME).unlink()  # force the single-candidate path

        try:
            fresh = ShardedStore.open(root)
        except ReproError:
            pass  # typed failure is the contract
        else:
            fresh.close()


class TestAdoptionAndRefresh:
    def test_cache_adopt_evicts_only_changed_versions(self, store_dir):
        store = open_store(store_dir)
        keys = store.keys()
        cache = PulseCache(store, capacity=len(keys))
        cache.get_many(keys)
        assert len(cache) == len(keys)

        with StoreWriter(store_dir) as writer:
            changed, removed = keys[0], keys[1]
            writer.put(changed[0], changed[1], _recalibrated(writer.store, changed))
            writer.delete(*removed)
            fresh = writer.commit()

        invalidated = cache.adopt_store(fresh)
        assert invalidated == 2
        assert changed not in cache
        assert removed not in cache
        assert keys[2] in cache
        stats = cache.stats()
        assert stats.insertions - stats.evictions == stats.size
        # The changed key now decodes the new generation's bytes.
        got = cache.get(*changed)
        assert np.array_equal(
            got.samples, fresh.decode_many([changed])[0].samples
        )
        store.close()

    def test_server_refresh_adopts_new_generation(self, store_dir):
        with PulseServer(open_store(store_dir), cache_capacity=32) as server:
            key = server.store.keys()[0]
            before = server.fetch(*key)
            assert server.refresh() is False

            with StoreWriter(store_dir) as writer:
                result = _recalibrated(writer.store, key)
                writer.put(key[0], key[1], result)
                writer.commit()

            assert server.refresh() is True
            assert server.store.generation == 1
            after = server.fetch(*key)
            assert np.array_equal(
                after.samples, result.reconstructed.samples
            )
            assert not np.array_equal(after.samples, before.samples)
            counters = server.metrics_snapshot()["counters"]
            assert counters["server.generation_adoptions"] == 1
            assert counters["cache.invalidations"] >= 1


class TestVerifyTool:
    def test_clean_store_is_ok(self, store_dir):
        report = verify_store(store_dir)
        assert report.ok
        assert report.generation == 0
        assert report.n_records > 0
        assert "status  OK" in format_report(report)

    def test_corrupt_record_is_reported(self, store_dir):
        store = ShardedStore.open(store_dir)
        record = store.record_info(*store.keys()[0])
        shard_path = store.shard_path(record.shard)
        store.close()
        blob = bytearray(shard_path.read_bytes())
        blob[record.offset + 10] ^= 0xFF
        shard_path.write_bytes(bytes(blob))

        report = verify_store(store_dir)
        assert not report.ok
        damaged = [s for s in report.shards if s.damage]
        assert damaged
        assert "DAMAGED" in format_report(report)

    def test_missing_shard_is_fatal(self, store_dir):
        next(store_dir.glob("shard-*.cql")).unlink()
        report = verify_store(store_dir)
        assert not report.ok
        assert report.fatal

    def test_cli_exit_codes(self, store_dir, capsys):
        from repro.cli import main

        assert main(["store", "verify", str(store_dir)]) == 0
        next(store_dir.glob("shard-*.cql")).unlink()
        assert main(["store", "verify", str(store_dir)]) == 1
        assert "DAMAGED" in capsys.readouterr().out
