"""Tests for Clifford groups and randomized benchmarking."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.quantum import (
    NoiseModel,
    NOISELESS,
    RBConfig,
    fit_rb_decay,
    one_qubit_cliffords,
    rb_errors_from_gate_errors,
    run_two_qubit_rb,
    two_qubit_cliffords,
)
from repro.quantum.cliffords import GENERATORS_2Q, _phase_canonical_key
from repro.quantum import gates


@pytest.fixture(scope="module")
def group2():
    return two_qubit_cliffords()


class TestCliffordGroups:
    def test_one_qubit_order(self):
        assert len(one_qubit_cliffords()) == 24

    def test_two_qubit_order(self, group2):
        assert len(group2) == 11520

    def test_identity_is_element_zero(self, group2):
        assert group2.words[0] == ()
        assert group2.index_of(np.eye(4, dtype=complex)) == 0

    def test_words_reconstruct_unitaries(self, group2):
        gens = dict(GENERATORS_2Q)
        rng = np.random.default_rng(5)
        for element in rng.integers(0, len(group2), size=20):
            u = np.eye(4, dtype=complex)
            for name in group2.words[element]:
                u = gens[name] @ u
            assert _phase_canonical_key(u) == _phase_canonical_key(
                group2.unitaries[element]
            )

    def test_inverse_index(self, group2):
        rng = np.random.default_rng(6)
        for element in rng.integers(0, len(group2), size=10):
            inverse = group2.inverse_index(int(element))
            product = group2.unitaries[inverse] @ group2.unitaries[element]
            assert group2.index_of(product) == 0

    def test_group_closure_sample(self, group2):
        rng = np.random.default_rng(7)
        for _ in range(10):
            a, b = rng.integers(0, len(group2), size=2)
            product = group2.unitaries[a] @ group2.unitaries[b]
            group2.index_of(product)  # raises if not in group

    def test_mean_cx_count_realistic(self, group2):
        """Canonical 2Q Clifford decompositions average ~1.5 CX; BFS
        shortest words land close."""
        assert 1.2 <= group2.mean_cx_count <= 2.2

    def test_non_element_rejected(self, group2):
        almost = np.eye(4, dtype=complex)
        almost[0, 0] = np.exp(0.3j) * 0.9
        with pytest.raises(SimulationError):
            group2.index_of(almost + 0.1)

    def test_phase_invariance(self):
        u = gates.CX
        assert _phase_canonical_key(u) == _phase_canonical_key(np.exp(1.3j) * u)


class TestRBDecayFit:
    def test_recovers_known_alpha(self):
        lengths = [1, 5, 10, 25, 50, 100]
        alpha = 0.97
        survival = [0.75 * alpha**m + 0.25 for m in lengths]
        amplitude, fitted, offset = fit_rb_decay(lengths, survival)
        assert fitted == pytest.approx(alpha, abs=1e-4)
        assert amplitude == pytest.approx(0.75, abs=1e-3)
        assert offset == pytest.approx(0.25, abs=1e-3)

    def test_too_few_points_rejected(self):
        with pytest.raises(SimulationError):
            fit_rb_decay([1, 2], [0.9, 0.8])


class TestRBExperiment:
    def test_noiseless_rb_survives(self):
        config = RBConfig(lengths=(1, 5, 10), n_sequences=3, noise=NOISELESS, seed=1)
        result = run_two_qubit_rb(config)
        assert min(result.survival) > 0.999
        assert result.epc < 1e-3

    def test_noisy_rb_decays(self):
        config = RBConfig(
            lengths=(1, 10, 25, 50),
            n_sequences=4,
            noise=NoiseModel(p1=1e-3, p2=1.5e-2, readout=0.02),
            seed=3,
        )
        result = run_two_qubit_rb(config)
        assert result.survival[0] > result.survival[-1]
        assert 1e-3 < result.epc < 8e-2
        assert result.fidelity == pytest.approx(1 - result.epc)

    def test_coherent_error_lowers_fidelity(self):
        config = RBConfig(lengths=(1, 10, 25, 50), n_sequences=4, noise=NOISELESS, seed=4)
        tilt = gates.rz(0.15) @ gates.rx(0.15)
        errors = rb_errors_from_gate_errors(sx_error_q0=tilt, sx_error_q1=tilt)
        ideal = run_two_qubit_rb(config)
        perturbed = run_two_qubit_rb(config, errors)
        assert perturbed.epc > ideal.epc

    def test_error_adapter_shapes(self):
        errors = rb_errors_from_gate_errors(
            sx_error_q0=np.eye(2), cx_error=np.eye(4)
        )
        assert errors["h0"].shape == (4, 4)
        assert errors["cx"].shape == (4, 4)
        assert "h1" not in errors

    def test_invalid_config_rejected(self):
        with pytest.raises(SimulationError):
            RBConfig(lengths=())
        with pytest.raises(SimulationError):
            RBConfig(n_sequences=0)
