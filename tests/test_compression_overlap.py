"""Tests for overlapping-window compression (Section VII-B's extension)."""

import numpy as np
import pytest

from repro.errors import CompressionError
from repro.compression import (
    compress_waveform,
    compress_channel_overlapping,
    compress_waveform_overlapping,
    decompress_channel_overlapping,
)
from repro.compression.overlap import _crossfade, _window_starts
from repro.pulses import Waveform, drag, gaussian_square


def _drag_wf(n=144):
    return Waveform(
        "x", drag(n, 0.18, n / 4, -0.7), dt=1 / 4.54e9, gate="x", qubits=(0,)
    )


class TestCrossfade:
    @pytest.mark.parametrize("ws", [8, 16, 32])
    def test_weights_tile_to_one_at_stride(self, ws):
        """A window's falling half plus the next window's rising half
        must sum to exactly 1 everywhere (perfect overlap-add)."""
        fade = _crossfade(ws)
        half = ws // 2
        np.testing.assert_allclose(fade[half:] + fade[:half], 1.0)

    def test_window_starts_cover_signal(self):
        starts = _window_starts(100, 16)
        assert starts[0] == 0
        assert starts[-1] + 16 >= 100
        assert all(b - a == 8 for a, b in zip(starts, starts[1:]))

    def test_short_signal_single_window(self):
        assert _window_starts(10, 16) == [0]


class TestRoundTrip:
    @pytest.mark.parametrize("ws", [8, 16])
    def test_near_lossless_at_zero_threshold(self, ws):
        wf = _drag_wf()
        result = compress_waveform_overlapping(wf, window_size=ws, threshold=0)
        assert result.mse < 1e-8

    def test_channel_roundtrip_smooth(self):
        t = np.arange(200)
        codes = np.rint(20000 * np.sin(np.pi * t / 199) ** 2).astype(np.int64)
        channel = compress_channel_overlapping(codes, 16, threshold=0)
        back = decompress_channel_overlapping(channel)
        assert np.max(np.abs(back - codes)) <= 60  # sub-0.3% of peak

    def test_reconstruction_length_preserved(self):
        wf = _drag_wf(150)  # not a multiple of the stride
        result = compress_waveform_overlapping(wf, window_size=8)
        assert result.reconstructed.n_samples == 150


class TestBoundaryDistortionFix:
    def test_overlap_beats_plain_ws8_quality(self):
        """The headline claim: overlapping windows reduce the WS=8
        boundary distortion by an order of magnitude."""
        wf = _drag_wf()
        plain = compress_waveform(wf, window_size=8, max_coefficients=1)
        overlap = compress_waveform_overlapping(wf, window_size=8, max_coefficients=1)
        assert overlap.mse < plain.mse / 3

    def test_overlap_costs_storage(self):
        wf = Waveform(
            "cr", gaussian_square(320, 0.3, 16, 256), dt=1e-9, gate="cx",
            qubits=(0, 1),
        )
        plain = compress_waveform(wf, window_size=8, max_coefficients=1)
        overlap = compress_waveform_overlapping(wf, window_size=8, max_coefficients=1)
        assert overlap.compression_ratio < plain.compression_ratio_variable

    def test_gate_error_not_worsened(self):
        """Overlap slashes MSE ~10x; the coherent gate error is already
        dominated by the envelope-area change rather than boundary hash
        (the qubit's rotating-frame integral low-passes it), so we
        assert it does not regress."""
        from repro.quantum import average_gate_fidelity, gate_error_unitary

        wf = _drag_wf()
        plain = compress_waveform(wf, window_size=8, max_coefficients=1)
        overlap = compress_waveform_overlapping(wf, window_size=8, max_coefficients=1)
        e_plain = gate_error_unitary(wf, plain.reconstructed, "x")
        e_overlap = gate_error_unitary(wf, overlap.reconstructed, "x")
        inf_plain = 1 - average_gate_fidelity(e_plain, np.eye(2))
        inf_overlap = 1 - average_gate_fidelity(e_overlap, np.eye(2))
        assert inf_overlap < inf_plain * 1.5


class TestValidation:
    def test_dct_n_rejected(self):
        with pytest.raises(CompressionError):
            compress_channel_overlapping(np.ones(32, dtype=int), 32, variant="DCT-N")

    def test_odd_window_rejected(self):
        with pytest.raises(CompressionError):
            compress_channel_overlapping(np.ones(32, dtype=int), 7)

    def test_empty_rejected(self):
        with pytest.raises(CompressionError):
            compress_channel_overlapping(np.array([], dtype=int), 8)
