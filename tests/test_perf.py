"""Tests for the perf subsystem and the ``repro bench`` command."""

import json

import pytest

from repro.errors import DeviceError
from repro.cli import build_parser, main
from repro.perf import (
    BENCH_SCHEMA,
    FULL_DEVICE_SPECS,
    QUICK_DEVICE_SPECS,
    TimingStats,
    render_bench_table,
    resolve_device,
    run_compression_bench,
    time_callable,
    write_bench_json,
)


class TestTimeCallable:
    def test_warmup_and_repeats_counted(self):
        calls = []
        stats, result = time_callable(lambda: calls.append(1) or len(calls), 3, 2)
        assert len(calls) == 5  # 2 warmup + 3 timed
        assert result == 5  # last call's return value
        assert stats.repeats == 3
        assert 0 <= stats.best_s <= stats.mean_s
        assert stats.std_s >= 0

    def test_throughput(self):
        stats = TimingStats(best_s=0.5, mean_s=0.5, std_s=0.0, repeats=1)
        assert stats.throughput(100) == 200.0
        assert stats.to_dict()["best_s"] == 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            time_callable(lambda: None, repeats=0)
        with pytest.raises(ValueError):
            time_callable(lambda: None, repeats=1, warmup=-1)


class TestResolveDevice:
    def test_specs(self):
        assert resolve_device("bogota").name == "ibm_bogota"
        assert resolve_device("google-3x3").name == "google_3x3"
        assert resolve_device("fluxonium-3").name == "fluxonium_3"

    def test_bad_specs(self):
        with pytest.raises(DeviceError):
            resolve_device("google-3by3")
        with pytest.raises(DeviceError):
            resolve_device("fluxonium-x")
        with pytest.raises(DeviceError):
            resolve_device("not-a-device")

    def test_default_spec_sets_cover_three_families(self):
        for specs in (QUICK_DEVICE_SPECS, FULL_DEVICE_SPECS):
            families = {s.split("-")[0] for s in specs if "-" in s}
            assert {"google", "fluxonium"} <= families
            assert len(specs) >= 3


@pytest.fixture(scope="module")
def payload():
    return run_compression_bench(
        device_specs=("bogota", "fluxonium-3"), repeats=1, warmup=0
    )


@pytest.fixture(scope="module")
def decode_payload():
    return run_compression_bench(
        device_specs=("bogota",), repeats=1, warmup=0, mode="decode"
    )


ALL_CODECS = {"DCT-N", "DCT-W", "int-DCT-W", "delta", "dictionary"}


class TestCompressionBench:
    def test_schema_and_coverage(self, payload):
        assert payload["schema"] == BENCH_SCHEMA
        assert len(payload["entries"]) == 2 * 5  # devices x codecs
        variants = {e["variant"] for e in payload["entries"]}
        assert variants == ALL_CODECS
        assert payload["config"]["mode"] == "all"

    def test_per_codec_sections(self, payload):
        """Schema v3: one encode/decode/bitstream roll-up per codec."""
        codecs = payload["codecs"]
        assert set(codecs) == ALL_CODECS
        for name, section in codecs.items():
            assert section["n_entries"] == 2
            assert section["encode"]["parity_ok"]
            assert section["decode"]["parity_ok"]
            assert section["bitstream"]["roundtrip_ok"]
            assert section["encode"]["min_speedup"] > 0
            assert section["decode"]["min_speedup"] > 0
            assert section["mean_compression_ratio_variable"] > 0
            assert section["mean_mse"] >= 0

    def test_entries_have_all_sections(self, payload):
        for entry in payload["entries"]:
            for section in ("encode", "decode"):
                for side in ("scalar", "batched"):
                    timing = entry[section][side]
                    assert timing["best_s"] > 0
                    assert timing["samples_per_s"] > 0
                    assert timing["pulses_per_s"] > 0
                assert entry[section]["speedup"] > 0
            bitstream = entry["bitstream"]
            assert bitstream["serialize"]["best_s"] > 0
            assert bitstream["parse"]["best_s"] > 0
            assert bitstream["n_bytes"] > 0
            assert bitstream["bytes_per_pulse"] > 0
            assert entry["compression_ratio_variable"] > 1
            assert entry["mean_mse"] >= 0

    def test_parity_gates_hold(self, payload):
        summary = payload["summary"]
        assert summary["all_parity_ok"]
        assert summary["all_decode_parity_ok"]
        assert summary["all_roundtrip_ok"]
        for e in payload["entries"]:
            assert e["encode"]["parity"]
            assert e["decode"]["parity"]
            assert e["bitstream"]["roundtrip_ok"]

    def test_fastpath_sections_and_parity(self, payload):
        """Schema v4: fused cold-miss + vectorized-parse measurements."""
        for e in payload["entries"]:
            decode, bitstream = e["decode"], e["bitstream"]
            assert decode["scalar_cold"]["best_s"] > 0
            assert decode["fused"]["best_s"] > 0
            assert decode["fused_speedup"] > 0
            assert decode["fused_parity"]
            assert bitstream["parse_scalar"]["best_s"] > 0
            assert bitstream["parse_speedup"] > 0
            assert bitstream["parse_parity"]
        summary = payload["summary"]
        assert summary["all_fused_parity_ok"]
        assert summary["all_parse_parity_ok"]
        assert summary["fused_speedup_gate"] == 10.0
        assert summary["min_fused_speedup"] > 0
        # The windowed-only gate input excludes full-frame codecs.
        assert (
            summary["min_fused_speedup_windowed"]
            >= summary["min_fused_speedup"]
        )
        for name, section in payload["codecs"].items():
            assert section["decode"]["fused_parity_ok"]
            assert section["bitstream"]["parse_parity_ok"]
            assert section["windowed"] == (name != "DCT-N")

    def test_decode_mode_skips_encode_timing(self, decode_payload):
        assert decode_payload["config"]["mode"] == "decode"
        for entry in decode_payload["entries"]:
            assert entry["encode"] is None
            assert entry["decode"]["parity"]
            assert entry["bitstream"]["roundtrip_ok"]
        summary = decode_payload["summary"]
        assert summary["min_speedup"] is None
        assert summary["all_parity_ok"]  # vacuous: no encode sections
        assert summary["min_decode_speedup"] > 0

    def test_bad_mode_rejected(self):
        with pytest.raises(DeviceError):
            run_compression_bench(device_specs=("bogota",), mode="nope")

    def test_json_serializable_and_written(self, payload, tmp_path):
        path = write_bench_json(payload, tmp_path / "bench.json")
        loaded = json.loads(path.read_text())
        assert loaded["schema"] == BENCH_SCHEMA
        assert loaded["summary"]["n_entries"] == len(payload["entries"])

    def test_render_table(self, payload):
        text = render_bench_table(payload)
        assert "ibm_bogota" in text
        assert "fluxonium_3" in text
        assert "parity ok" in text

    def test_render_table_decode_mode(self, decode_payload):
        text = render_bench_table(decode_payload)
        assert "mode=decode" in text
        assert "parity ok" in text


class TestCliBench:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["bench", "--quick"])
        assert args.quick and args.devices is None and args.output is None
        assert not args.decode

    def test_parser_decode_flag(self):
        assert build_parser().parse_args(["bench", "--decode"]).decode

    def test_bench_decode_command(self, tmp_path, capsys):
        out = tmp_path / "bench_decode.json"
        code = main(
            [
                "bench",
                "--decode",
                "--devices",
                "fluxonium-3",
                "--repeats",
                "1",
                "--warmup",
                "0",
                "--output",
                str(out),
            ]
        )
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["config"]["mode"] == "decode"
        assert payload["summary"]["all_decode_parity_ok"]
        assert payload["summary"]["all_roundtrip_ok"]
        assert all(e["encode"] is None for e in payload["entries"])

    def test_bench_command_writes_json(self, tmp_path, capsys):
        out = tmp_path / "BENCH_compression.json"
        code = main(
            [
                "bench",
                "--devices",
                "bogota",
                "--repeats",
                "1",
                "--warmup",
                "0",
                "--output",
                str(out),
            ]
        )
        assert code == 0
        assert out.exists()
        stdout = capsys.readouterr().out
        assert "scalar vs batched" in stdout
        payload = json.loads(out.read_text())
        assert payload["summary"]["all_parity_ok"]
        assert {e["variant"] for e in payload["entries"]} == ALL_CODECS

    def test_bench_variants_option(self, tmp_path, capsys):
        out = tmp_path / "bench_delta.json"
        code = main(
            [
                "bench",
                "--devices",
                "fluxonium-3",
                "--variants",
                "delta",
                "--repeats",
                "1",
                "--warmup",
                "0",
                "--output",
                str(out),
            ]
        )
        assert code == 0
        payload = json.loads(out.read_text())
        assert {e["variant"] for e in payload["entries"]} == {"delta"}
        assert payload["codecs"]["delta"]["encode"]["parity_ok"]

    def test_bench_unknown_variant_rejected(self, capsys):
        assert main(["bench", "--variants", "DCT-Z"]) == 2
        assert "registered" in capsys.readouterr().out


@pytest.fixture(scope="module")
def serving_payload():
    from repro.perf import run_serving_bench

    return run_serving_bench(
        device_specs=("bogota",),
        shard_counts=(1, 2),
        cache_fractions=(0.5, 1.0),
        n_requests=128,
        repeats=1,
        warmup=0,
    )


class TestServingBench:
    def test_schema_and_coverage(self, serving_payload):
        from repro.perf import SERVING_BENCH_SCHEMA

        assert serving_payload["schema"] == SERVING_BENCH_SCHEMA
        # devices x shard counts x cache fractions
        assert len(serving_payload["entries"]) == 1 * 2 * 2
        assert {e["n_shards"] for e in serving_payload["entries"]} == {1, 2}

    def test_identity_gate_holds(self, serving_payload):
        assert serving_payload["summary"]["all_identity_ok"]
        for entry in serving_payload["entries"]:
            assert entry["identity_ok"]

    def test_throughput_fields_positive(self, serving_payload):
        for entry in serving_payload["entries"]:
            for field in (
                "naive_pulses_per_s",
                "cold_pulses_per_s",
                "warm_pulses_per_s",
                "warm_speedup_vs_naive",
            ):
                assert entry[field] > 0
            assert 0.0 <= entry["warm_hit_rate"] <= 1.0
            assert entry["cache_size"] >= 1
            assert entry["store_bytes"] > 0

    def test_record_memory_measured(self, serving_payload):
        """Schema v2: the slots-era per-record object footprint."""
        for entry in serving_payload["entries"]:
            assert entry["record_bytes_per_pulse"] > 0
        summary = serving_payload["summary"]
        assert summary["record_bytes_per_pulse_mean"] > 0

    def test_full_cache_warm_pass_is_all_hits_and_fast(self, serving_payload):
        full = [
            e
            for e in serving_payload["entries"]
            if e["cache_size"] >= e["n_pulses"]
        ]
        assert full
        for entry in full:
            assert entry["warm_hit_rate"] == 1.0
        summary = serving_payload["summary"]
        assert summary["warm_speedup_full_cache_min"] >= summary["warm_speedup_gate"]
        assert summary["warm_speedup_gate_ok"]

    def test_json_round_trip_and_table(self, serving_payload, tmp_path):
        from repro.perf import (
            SERVING_BENCH_SCHEMA,
            render_serving_table,
            write_serving_json,
        )

        path = write_serving_json(serving_payload, tmp_path / "serving.json")
        loaded = json.loads(path.read_text())
        assert loaded["schema"] == SERVING_BENCH_SCHEMA
        text = render_serving_table(serving_payload)
        assert "ibm_bogota" in text
        assert "identity ok" in text

    def test_validation(self):
        from repro.perf import run_serving_bench

        with pytest.raises(DeviceError):
            run_serving_bench(device_specs=())
        with pytest.raises(DeviceError):
            run_serving_bench(device_specs=("bogota",), shard_counts=(0,))
        with pytest.raises(DeviceError):
            run_serving_bench(device_specs=("bogota",), cache_fractions=(0.0,))
        with pytest.raises(DeviceError):
            run_serving_bench(device_specs=("bogota",), n_requests=0)


class TestCliServingBench:
    def test_parser_flag(self):
        args = build_parser().parse_args(["bench", "--serving", "--quick"])
        assert args.serving and args.quick
        assert args.seed == 7

    def test_serving_rejects_decode_profile(self, capsys):
        assert main(["bench", "--serving", "--decode"]) == 2
        assert "different bench profiles" in capsys.readouterr().out

    def test_serving_variants_must_name_one_registered_codec(self, capsys):
        assert main(["bench", "--serving", "--variants", "delta,DCT-W"]) == 2
        assert "one codec" in capsys.readouterr().out
        assert main(["bench", "--serving", "--variants", "nope"]) == 2
        assert "registered" in capsys.readouterr().out

    def test_serving_variant_wired_through(self, tmp_path, capsys):
        out = tmp_path / "serving_delta.json"
        code = main(
            [
                "bench",
                "--serving",
                "--quick",
                "--devices",
                "bogota",
                "--variants",
                "delta",
                "--repeats",
                "1",
                "--warmup",
                "0",
                "--output",
                str(out),
            ]
        )
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["config"]["variant"] == "delta"
        assert all(e["variant"] == "delta" for e in payload["entries"])
        assert payload["summary"]["all_identity_ok"]

    def test_bench_serving_command_writes_json(self, tmp_path, capsys):
        out = tmp_path / "BENCH_serving.json"
        code = main(
            [
                "bench",
                "--serving",
                "--quick",
                "--devices",
                "bogota",
                "--repeats",
                "1",
                "--warmup",
                "0",
                "--output",
                str(out),
            ]
        )
        assert code == 0
        stdout = capsys.readouterr().out
        assert "Pulse serving" in stdout
        payload = json.loads(out.read_text())
        assert payload["summary"]["all_identity_ok"]
        assert payload["config"]["n_requests"] == 512  # the quick profile
