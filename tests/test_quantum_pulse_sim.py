"""Tests for pulse-level simulation and compression error extraction."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.compression import compress_waveform
from repro.core import CompaqtCompiler
from repro.devices import ibm_device
from repro.pulses import Waveform, constant, gaussian_square
from repro.quantum import (
    average_gate_fidelity,
    calibrate_scale,
    compression_error_map,
    cross_resonance_unitary,
    gate_error_unitary,
    single_qubit_unitary,
    zx_rotation,
)
from repro.quantum.gates import SX, X


@pytest.fixture(scope="module")
def bogota():
    return ibm_device("bogota")


class TestCalibration:
    def test_square_pulse_analytic_angle(self):
        """Constant drive: rotation angle = 2*pi*scale*amp*T exactly."""
        wf = Waveform("sq", constant(100, 0.5), dt=1e-9, gate="x", qubits=(0,))
        scale = calibrate_scale(wf, np.pi)
        assert scale * 0.5 * 100e-9 * 2 * np.pi == pytest.approx(np.pi, rel=1e-4)

    def test_x_pulse_calibrates_to_x(self, bogota):
        """Calibrated DRAG realizes X up to the few-1e-4 residual a real
        two-level DRAG leaves (the paper's hardware has the same)."""
        wf = bogota.pulse_library().waveform("x", (0,))
        unitary = single_qubit_unitary(wf, calibrate_scale(wf, np.pi))
        assert average_gate_fidelity(unitary, X) > 0.999

    def test_sx_pulse_calibrates_to_sx(self, bogota):
        wf = bogota.pulse_library().waveform("sx", (0,))
        unitary = single_qubit_unitary(wf, calibrate_scale(wf, np.pi / 2))
        assert average_gate_fidelity(unitary, SX) > 0.999

    def test_cr_pulse_realizes_rotated_zx(self, bogota):
        """The CR envelope's phase rotates the drive axis: the realized
        gate is exp(-i pi/4 Z x (cos(phi) X + sin(phi) Y))."""
        from scipy.linalg import expm

        from repro.quantum.gates import X as PX, Y as PY, Z as PZ

        cal = bogota.edge_calibration(0, 1)
        wf = bogota.pulse_library().waveform("cx", (0, 1))
        unitary = cross_resonance_unitary(wf, calibrate_scale(wf, np.pi / 2))
        axis = np.cos(cal.phase) * PX + np.sin(cal.phase) * PY
        target = expm(-1j * np.pi / 4 * np.kron(PZ, axis))
        assert average_gate_fidelity(unitary, target) > 0.999

    def test_cr_zero_phase_is_plain_zx(self):
        """With a zero calibration phase the CR pulse is exactly ZX."""
        from repro.pulses import gaussian_square

        wf = Waveform(
            "cr0", gaussian_square(1360, 0.3, 64, 1104), dt=1 / 4.54e9,
            gate="cx", qubits=(0, 1),
        )
        unitary = cross_resonance_unitary(wf, calibrate_scale(wf, np.pi / 2))
        assert average_gate_fidelity(unitary, zx_rotation(np.pi / 2)) > 0.9999

    def test_zero_waveform_rejected(self):
        wf = Waveform("z", np.zeros(16, dtype=complex) + 0j, dt=1e-9, gate="x", qubits=(0,))
        with pytest.raises(SimulationError):
            calibrate_scale(wf, np.pi)


class TestGateErrors:
    def test_identity_when_lossless(self, bogota):
        wf = bogota.pulse_library().waveform("x", (0,))
        error = gate_error_unitary(wf, wf, "x")
        assert average_gate_fidelity(error, np.eye(2)) == pytest.approx(1.0)

    def test_compression_error_small_at_ws16(self, bogota):
        """Paper: <0.1% fidelity impact from int-DCT-W compression."""
        wf = bogota.pulse_library().waveform("x", (0,))
        result = compress_waveform(wf, window_size=16)
        error = gate_error_unitary(wf, result.reconstructed, "x")
        infidelity = 1 - average_gate_fidelity(error, np.eye(2))
        assert infidelity < 1e-3

    def test_heavier_distortion_bigger_error(self, bogota):
        wf = bogota.pulse_library().waveform("sx", (0,))
        light = compress_waveform(wf, window_size=16, threshold=64)
        heavy = compress_waveform(wf, window_size=8, threshold=2048, max_coefficients=1)
        e_light = gate_error_unitary(wf, light.reconstructed, "sx")
        e_heavy = gate_error_unitary(wf, heavy.reconstructed, "sx")
        inf_light = 1 - average_gate_fidelity(e_light, np.eye(2))
        inf_heavy = 1 - average_gate_fidelity(e_heavy, np.eye(2))
        assert inf_heavy > inf_light

    def test_unknown_gate_rejected(self, bogota):
        wf = bogota.pulse_library().waveform("x", (0,))
        with pytest.raises(SimulationError):
            gate_error_unitary(wf, wf, "measure")

    def test_error_map_covers_physical_gates(self, bogota):
        compiled = CompaqtCompiler(window_size=16).compile_library(
            bogota.pulse_library()
        )
        errors = compression_error_map(bogota, compiled)
        assert ("x", (0,)) in errors
        assert ("sx", (4,)) in errors
        assert ("cx", (0, 1)) in errors
        assert all(gate != "measure" for gate, _q in errors)
        # every error is tiny (the paper's fidelity-neutrality claim)
        for (gate, _q), error in errors.items():
            dim = error.shape[0]
            assert 1 - average_gate_fidelity(error, np.eye(dim)) < 5e-3
