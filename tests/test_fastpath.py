"""Fast-path conformance: vectorized parse/decode vs the scalar oracle.

The zero-copy engine (:mod:`repro.compression.fastpath`) and the
vectorized serializer must be indistinguishable from the scalar
word-at-a-time reference on *every* input:

* well-formed bytes parse to equal objects, decode to bit-identical
  samples, and re-serialize byte-for-byte;
* malformed bytes raise :class:`~repro.errors.CompressionError` exactly
  when the oracle raises -- never another exception, never garbage
  samples (one documented tightening: the fused decoder rejects a
  corrupt record whose I and Q channels decode to different sample
  counts, which the scalar reference mishandles via numpy
  broadcasting);
* the mmap-backed store paths (span reads, fused ``decode_many`` /
  ``decode_shard``, prewarm) serve the same bytes and samples as the
  pre-pool implementation, with deterministic handle release.
"""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CompressionError, StoreError
from repro.compression.batch import decompress_batch
from repro.compression.bitstream import (
    RecordSpan,
    _Writer,
    _channel_block_bytes,
    _write_channel_scalar,
    parse_library,
    parse_library_scalar,
    parse_waveform,
    parse_waveform_scalar,
    serialize_library,
    serialize_waveform,
)
from repro.compression.fastpath import (
    decode_library_bytes,
    decode_record_bytes,
    decode_records,
    parse_library_fast,
    parse_waveform_fast,
)
from repro.compression.pipeline import (
    CompressedChannel,
    compress_waveform,
    decompress_waveform,
)
from repro.core import CompaqtCompiler
from repro.devices import ibm_device
from repro.pulses import Waveform
from repro.store import PulseCache, PulseServer, save_store
from repro.store.cache import CacheStats
from repro.store.server import ServerStats
from repro.store.sharded import StoreRecord
from repro.transforms.rle import EncodedWindow

ALL_VARIANTS = ("DCT-N", "DCT-W", "int-DCT-W", "delta", "dictionary")


def _waveform(n, seed=0, gate="x", qubits=(0,)):
    rng = np.random.default_rng(seed)
    samples = 0.65 * (rng.uniform(-1, 1, n) + 1j * rng.uniform(-1, 1, n))
    peak = max(1.0, float(np.max(np.abs(samples))))
    return Waveform(
        f"wf{n}_{seed}", samples / peak, dt=1e-9, gate=gate, qubits=qubits
    )


def _record_blob(n=40, variant="int-DCT-W", window_size=16, threshold=128,
                 seed=0):
    compressed = compress_waveform(
        _waveform(n, seed), window_size=window_size, variant=variant,
        threshold=threshold,
    ).compressed
    return serialize_waveform(compressed), compressed


#: Golden v1 blob (pre-registry serializer) -- duplicated from
#: tests/test_bitstream.py so this suite stands alone.
GOLDEN_V1_WAVEFORM = bytes.fromhex(
    "435157310200100000000600676f6c64656e01007801000095d626e80b2e113e"
    "1c000000020000000400b0040000f9ff0000030000000d000100030000800000"
    "ff7f00000e0001001c000000020000000400b0040000f9ff0000030000000d00"
    "0100030000800000ff7f00000e000100"
)


class TestParseConformance:
    """Fast object parse == scalar oracle on well-formed streams."""

    @given(
        n=st.integers(min_value=1, max_value=120),
        threshold=st.integers(min_value=0, max_value=2000),
        variant=st.sampled_from(ALL_VARIANTS),
        window_size=st.sampled_from((8, 16, 32)),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_fuzz_parse_and_fused_decode_match_oracle(
        self, n, threshold, variant, window_size, seed
    ):
        blob, compressed = _record_blob(n, variant, window_size, threshold, seed)
        scalar = parse_waveform_scalar(blob)
        fast = parse_waveform_fast(blob)
        assert fast == scalar == compressed
        assert serialize_waveform(fast) == blob
        reference = decompress_waveform(scalar)
        fused = decode_record_bytes(blob)
        assert fused.name == reference.name
        assert fused.gate == reference.gate
        assert fused.qubits == reference.qubits
        np.testing.assert_array_equal(fused.samples, reference.samples)

    def test_dispatch_is_the_fast_path(self):
        blob, compressed = _record_blob()
        assert parse_waveform(blob) == compressed
        assert parse_waveform(memoryview(blob)) == compressed

    def test_golden_v1_parses_identically(self):
        scalar = parse_waveform_scalar(GOLDEN_V1_WAVEFORM)
        fast = parse_waveform_fast(GOLDEN_V1_WAVEFORM)
        assert fast == scalar
        assert serialize_waveform(fast) == GOLDEN_V1_WAVEFORM
        np.testing.assert_array_equal(
            decode_record_bytes(GOLDEN_V1_WAVEFORM).samples,
            decompress_waveform(scalar).samples,
        )

    def test_library_parse_and_fused_decode(self):
        compiled = CompaqtCompiler(window_size=16).compile_library(
            ibm_device("bogota").pulse_library()
        )
        blob = compiled.to_bytes()
        scalar = parse_library_scalar(blob)
        fast = parse_library_fast(blob)
        assert fast == scalar
        assert serialize_library(fast) == blob
        decoded = decode_library_bytes(blob)
        assert [(g, q) for g, q, _w in decoded] == [
            (e.gate, e.qubits) for e in scalar.entries
        ]
        for (_g, _q, waveform), entry in zip(decoded, scalar.entries):
            np.testing.assert_array_equal(
                waveform.samples,
                decompress_waveform(entry.compressed).samples,
            )

    def test_decode_records_mixed_batch(self):
        blobs, references = [], []
        for i, variant in enumerate(ALL_VARIANTS):
            for n in (5, 17, 40):
                blob, compressed = _record_blob(
                    n, variant, window_size=8, seed=100 + i
                )
                blobs.append(blob)
                references.append(decompress_waveform(compressed))
        out = decode_records(blobs)
        assert len(out) == len(references)
        for got, want in zip(out, references):
            assert got.name == want.name
            np.testing.assert_array_equal(got.samples, want.samples)

    def test_batch_decoded_waveforms_own_their_samples(self):
        """Cached entries must not pin the whole decode batch's memory."""
        blobs = [_record_blob(40, seed=s)[0] for s in range(5)]
        for waveform in decode_records(blobs):
            assert waveform.samples.base is None
            assert not waveform.samples.flags.writeable

    def test_fused_matches_batched_engine(self):
        blobs, entries = zip(
            *(_record_blob(n, "delta", seed=n) for n in (3, 16, 33, 64))
        )
        fused = decode_records(list(blobs))
        batched = decompress_batch(list(entries))
        for got, want in zip(fused, batched):
            np.testing.assert_array_equal(got.samples, want.samples)


class TestSerializerParity:
    """The vectorized channel writer is byte-identical to the scalar."""

    @given(
        n=st.integers(min_value=1, max_value=80),
        threshold=st.integers(min_value=0, max_value=1500),
        variant=st.sampled_from(ALL_VARIANTS),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_channel_bytes_match_scalar_writer(
        self, n, threshold, variant, seed
    ):
        _blob, compressed = _record_blob(
            n, variant, threshold=threshold, seed=seed
        )
        for channel in (compressed.i_channel, compressed.q_channel):
            writer = _Writer()
            _write_channel_scalar(writer, channel)
            scalar_bytes = writer.getvalue()
            assert scalar_bytes[8:] == _channel_block_bytes(channel)

    def test_serializer_validation_matches_scalar(self):
        window = EncodedWindow(coeffs=(70000,), zero_run=15)
        channel = CompressedChannel(
            windows=(window,), variant="int-DCT-W", window_size=16,
            original_length=16,
        )
        with pytest.raises(CompressionError, match="16-bit"):
            _channel_block_bytes(channel)
        with pytest.raises(CompressionError, match="16-bit"):
            _write_channel_scalar(_Writer(), channel)


class TestMalformedEquivalence:
    """Corrupt bytes: the fast paths fail exactly like the oracle."""

    @given(
        variant=st.sampled_from(ALL_VARIANTS),
        index=st.integers(min_value=0, max_value=10**6),
        flip=st.integers(min_value=1, max_value=255),
    )
    @settings(max_examples=300, deadline=None)
    def test_single_byte_corruption_equivalence(self, variant, index, flip):
        blob, _ = _record_blob(24, variant, seed=7)
        corrupt = bytearray(blob)
        corrupt[index % len(corrupt)] ^= flip
        corrupt = bytes(corrupt)
        try:
            scalar = parse_waveform_scalar(corrupt)
        except CompressionError:
            scalar = None
        try:
            fast = parse_waveform_fast(corrupt)
        except CompressionError:
            fast = None
        # Same accept/reject verdict, and equal objects on accept.
        assert (scalar is None) == (fast is None)
        if scalar is not None:
            assert fast == scalar
            # Fused decode must agree with the scalar decode -- except
            # when the corruption produced mismatched channel lengths,
            # which the scalar reference mishandles (numpy broadcast or
            # ValueError) and the fused path rejects outright.
            if (
                scalar.i_channel.original_length
                == scalar.q_channel.original_length
            ):
                np.testing.assert_array_equal(
                    decode_record_bytes(corrupt).samples,
                    decompress_waveform(scalar).samples,
                )
            else:
                with pytest.raises(CompressionError):
                    decode_record_bytes(corrupt)

    @given(data=st.binary(max_size=300))
    @settings(max_examples=150, deadline=None)
    def test_random_bytes_totality(self, data):
        for fn in (
            parse_waveform_fast,
            parse_library_fast,
            decode_record_bytes,
            decode_library_bytes,
            lambda b: decode_records([b, b]),
        ):
            try:
                fn(data)
            except CompressionError:
                pass

    def test_every_truncation_rejected(self):
        blob, _ = _record_blob(24)
        for cut in range(len(blob)):
            with pytest.raises(CompressionError):
                parse_waveform_fast(blob[:cut])
            with pytest.raises(CompressionError):
                decode_record_bytes(blob[:cut])

    def test_empty_record_batch_rejected(self):
        with pytest.raises(CompressionError):
            decode_records([])


@pytest.fixture(scope="module")
def store(tmp_path_factory):
    compiled = CompaqtCompiler(window_size=16).compile_library(
        ibm_device("bogota").pulse_library()
    )
    path = tmp_path_factory.mktemp("fastpath-store") / "bogota.cqs"
    return save_store(compiled, path, n_shards=3), compiled


class TestStoreFastPath:
    def test_decode_many_matches_scalar_reference(self, store):
        sharded, compiled = store
        keys = sharded.keys()
        decoded = sharded.decode_many(keys)
        for key, waveform in zip(keys, decoded):
            reference = decompress_waveform(compiled.result(*key).compressed)
            assert waveform.name == reference.name
            np.testing.assert_array_equal(waveform.samples, reference.samples)

    def test_decode_record_and_duplicate_requests(self, store):
        sharded, compiled = store
        key = sharded.keys()[0]
        one = sharded.decode_record(*key)
        np.testing.assert_array_equal(
            one.samples,
            decompress_waveform(compiled.result(*key).compressed).samples,
        )
        twice = sharded.decode_many([key, key])
        np.testing.assert_array_equal(twice[0].samples, twice[1].samples)

    def test_decode_shard_covers_every_record(self, store):
        sharded, compiled = store
        seen = {}
        for shard in range(sharded.n_shards):
            for key, waveform in sharded.decode_shard(shard):
                seen[key] = waveform
        assert set(seen) == set(sharded.keys())
        for key, waveform in seen.items():
            np.testing.assert_array_equal(
                waveform.samples,
                decompress_waveform(compiled.result(*key).compressed).samples,
            )
        with pytest.raises(StoreError):
            sharded.decode_shard(sharded.n_shards)

    def test_read_record_bytes_is_span_copy(self, store):
        sharded, _ = store
        key = sharded.keys()[0]
        raw = sharded.read_record_bytes(*key)
        assert isinstance(raw, bytes)
        assert parse_waveform(raw).gate == key[0]

    def test_handle_pool_is_bounded_and_reopens_after_close(self, store):
        sharded, _ = store
        sharded.close()
        assert sharded.open_shard_handles == 0
        sharded.read_many(sharded.keys())  # touches every shard
        assert 1 <= sharded.open_shard_handles <= sharded.n_shards
        sharded.close()
        assert sharded.open_shard_handles == 0
        # Reads after close transparently remap.
        assert len(sharded.read_many(sharded.keys())) == len(sharded)

    def test_store_context_manager(self, store):
        sharded, _ = store
        with sharded as handle:
            handle.read_record(*sharded.keys()[0])
            assert handle.open_shard_handles >= 1
        assert sharded.open_shard_handles == 0

    def test_cache_prewarm_and_context_manager(self, store):
        sharded, compiled = store
        with PulseCache(sharded, capacity=len(sharded)) as cache:
            inserted = cache.prewarm()
            assert inserted == len(sharded)
            assert len(cache) == len(sharded)
            stats = cache.stats()
            assert stats.hits == 0 and stats.misses == 0  # not traffic
            key = sharded.keys()[0]
            np.testing.assert_array_equal(
                cache.get(*key).samples,
                decompress_waveform(compiled.result(*key).compressed).samples,
            )
            assert cache.stats().hits == 1
        assert sharded.open_shard_handles == 0

    def test_prewarm_stops_at_capacity_without_churn(self, store):
        sharded, _ = store
        cache = PulseCache(sharded, capacity=4)
        inserted = cache.prewarm()
        stats = cache.stats()
        assert inserted == 4 == len(cache)
        assert stats.evictions == 0  # no decode-then-evict churn

    def test_server_close_releases_pool_and_keeps_serving(self, store):
        sharded, compiled = store
        server = PulseServer(sharded, cache_capacity=4)
        key = sharded.keys()[0]
        server.fetch(*key)
        server.close()
        assert sharded.open_shard_handles == 0
        other = sharded.keys()[-1]
        waveform = server.fetch(*other)  # inline fill, pool remaps
        np.testing.assert_array_equal(
            waveform.samples,
            decompress_waveform(compiled.result(*other).compressed).samples,
        )
        server.close()


class TestSlots:
    """High-volume record types carry no per-instance __dict__."""

    @pytest.mark.parametrize(
        "instance",
        [
            EncodedWindow(coeffs=(1, 2), zero_run=3),
            RecordSpan(gate="x", qubits=(0,), offset=0, length=4),
            StoreRecord(
                gate="x", qubits=(0,), shard=0, offset=0, length=4,
                mse=0.0, threshold=0.0,
            ),
            CacheStats(
                capacity=1, size=0, hits=0, misses=0, insertions=0,
                evictions=0,
            ),
        ],
    )
    def test_no_instance_dict(self, instance):
        assert not hasattr(instance, "__dict__")
        assert dataclasses.fields(instance)

    def test_compressed_types_are_slotted(self):
        _blob, compressed = _record_blob(8)
        assert not hasattr(compressed, "__dict__")
        assert not hasattr(compressed.i_channel, "__dict__")
        assert not hasattr(compressed.i_channel.windows[0], "__dict__")
        assert "__dict__" not in ServerStats.__dict__.get("__slots__", ())

    def test_window_invariants_still_enforced(self):
        with pytest.raises(CompressionError):
            EncodedWindow(coeffs=(1, 0), zero_run=2)
        with pytest.raises(CompressionError):
            EncodedWindow(coeffs=(), zero_run=-1)
