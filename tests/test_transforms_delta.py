"""Tests for the base-delta baseline (Fig 7a's delta bars)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.errors import CompressionError
from repro.pulses import drag, lifted_gaussian, quantize
from repro.transforms import delta_compress, delta_decompress


def sample_arrays():
    return hnp.arrays(
        np.int64, st.integers(1, 200), elements=st.integers(-32767, 32767)
    )


class TestLossless:
    @given(sample_arrays())
    @settings(max_examples=100, deadline=None)
    def test_sign_magnitude_roundtrip(self, samples):
        encoded = delta_compress(samples, representation="sign-magnitude")
        np.testing.assert_array_equal(delta_decompress(encoded), samples)

    @given(sample_arrays())
    @settings(max_examples=100, deadline=None)
    def test_twos_complement_roundtrip(self, samples):
        encoded = delta_compress(samples, representation="twos-complement")
        np.testing.assert_array_equal(delta_decompress(encoded), samples)


class TestPaperBehaviour:
    def test_smooth_unipolar_waveform_compresses_about_2x(self):
        """No zero crossing: deltas are small, R approaches 2 (Fig 7a)."""
        codes = quantize(lifted_gaussian(160, 0.9, 40).real).astype(np.int64)
        encoded = delta_compress(codes)
        assert 1.4 <= encoded.compression_ratio <= 2.6

    def test_zero_crossing_waveform_incompressible_in_sign_magnitude(self):
        """The DRAG quadrature crosses zero: sign-magnitude deltas span
        the full bit-field, so R collapses to ~1 (the paper's point)."""
        codes = quantize(drag(160, 0.9, 40, 2.0).imag).astype(np.int64)
        encoded = delta_compress(codes, representation="sign-magnitude")
        assert encoded.compression_ratio <= 1.05

    def test_twos_complement_survives_zero_crossing(self):
        """Ablation: a different sample format would rescue delta."""
        codes = quantize(drag(160, 0.9, 40, 2.0).imag).astype(np.int64)
        encoded = delta_compress(codes, representation="twos-complement")
        assert encoded.compression_ratio > 1.5

    def test_constant_stream_max_ratio(self):
        encoded = delta_compress(np.full(100, 123))
        assert encoded.delta_bits == 1
        assert encoded.compression_ratio > 10


class TestValidation:
    def test_unknown_representation_rejected(self):
        with pytest.raises(CompressionError):
            delta_compress(np.ones(4, dtype=int), representation="gray")

    def test_empty_input_rejected(self):
        with pytest.raises(CompressionError):
            delta_compress(np.array([], dtype=int))

    def test_out_of_range_sample_rejected(self):
        with pytest.raises(CompressionError):
            delta_compress(np.array([40000]), sample_bits=16)

    def test_encoded_bits_accounting(self):
        encoded = delta_compress(np.array([0, 1, 2, 3]))
        assert encoded.encoded_bits == 16 + 3 * encoded.delta_bits
        assert encoded.original_bits == 64


class TestRetiredIsland:
    """The transforms/delta.py island is a deprecation shim (PR 4)."""

    def test_shim_module_warns_and_forwards(self):
        import importlib
        import sys
        import warnings

        sys.modules.pop("repro.transforms.delta", None)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            shim = importlib.import_module("repro.transforms.delta")
        assert any(
            issubclass(w.category, DeprecationWarning) for w in caught
        )
        from repro.compression.codecs.delta import delta_compress as canonical

        assert shim.delta_compress is canonical
        assert shim.delta_compress is delta_compress

    def test_lazy_package_forwarding_is_single_sourced(self):
        import repro.transforms as transforms
        from repro.compression.codecs import delta as home

        assert transforms.delta_compress is home.delta_compress
        assert transforms.DeltaEncoded is home.DeltaEncoded
        with pytest.raises(AttributeError):
            transforms.not_a_baseline

    def test_submodule_attribute_access_still_works(self):
        # Pre-PR 4, `import repro.transforms` bound the .delta submodule
        # as an import side effect; attribute access must keep working.
        import sys
        import warnings

        import repro.transforms as transforms

        # Force the lazy path: drop both the module cache entry and the
        # attribute the import system binds on the parent package.
        sys.modules.pop("repro.transforms.delta", None)
        transforms.__dict__.pop("delta", None)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            assert transforms.delta.delta_compress is delta_compress
