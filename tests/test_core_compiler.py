"""Tests for the COMPAQT compiler module and fidelity-aware search."""

import pytest

from repro.errors import CompressionError, DeviceError
from repro.core import CompaqtCompiler, fidelity_aware_compress
from repro.devices import ibm_device
from repro.pulses import Waveform, drag


@pytest.fixture(scope="module")
def bogota():
    return ibm_device("bogota")


@pytest.fixture(scope="module")
def compiled(bogota):
    return CompaqtCompiler(window_size=16).compile_library(bogota.pulse_library())


class TestCompiledLibrary:
    def test_every_entry_compiled(self, bogota, compiled):
        assert len(compiled) == len(bogota.pulse_library())

    def test_lookup_and_missing(self, compiled):
        result = compiled.result("x", (0,))
        assert result.compression_ratio > 1
        with pytest.raises(DeviceError):
            compiled.result("x", (99,))

    def test_overall_ratio_in_paper_band(self, compiled):
        """Table VII: average R ~ 6.3-6.5 at WS=16 across IBM machines."""
        assert 5.0 <= compiled.overall_ratio_variable <= 8.5

    def test_min_ratio_is_the_sx_floor(self, compiled):
        """Table VII: minimum R = 5.33 (the short SX pulse)."""
        assert compiled.ratios.min() >= 4.5
        assert compiled.ratios.min() <= 6.0

    def test_worst_case_window_is_three_words(self, compiled):
        """Fig 11: at most 3 samples per window across the library."""
        assert compiled.worst_case_window_words == 3

    def test_mse_band(self, compiled):
        """Fig 7c: MSE between ~1e-7 and ~1e-5."""
        assert compiled.mean_mse < 1e-5
        assert compiled.max_mse < 5e-5

    def test_gate_stats(self, compiled):
        stats = compiled.gate_stats("cx")
        assert stats.count == 8  # bogota: 4 undirected edges, directed
        assert stats.min_ratio <= stats.mean_ratio <= stats.max_ratio
        with pytest.raises(DeviceError):
            compiled.gate_stats("toffoli")

    def test_qubit_gate_ratio(self, compiled):
        """Fig 14's bars: per-qubit basis-gate ratios ~ 5-8x."""
        for q in range(5):
            assert 4.0 <= compiled.qubit_gate_ratio("sx", q) <= 9.0
        with pytest.raises(DeviceError):
            compiled.qubit_gate_ratio("cx", 99)

    def test_decompressed_waveform_close_to_original(self, bogota, compiled):
        original = bogota.pulse_library().waveform("x", (1,))
        played = compiled.waveform("x", (1,))
        assert original.mse(played) < 1e-4

    def test_empty_library_rejected(self):
        from repro.pulses import PulseLibrary

        with pytest.raises(CompressionError):
            CompaqtCompiler().compile_library(PulseLibrary())


class TestFidelityAware:
    def _waveform(self):
        return Waveform(
            "x_q0", drag(144, 0.18, 36, -0.7), dt=1 / 4.54e9, gate="x", qubits=(0,)
        )

    def test_meets_target(self):
        result = fidelity_aware_compress(self._waveform(), target_mse=1e-7)
        assert result.mse <= 1e-7

    def test_looser_target_compresses_harder(self):
        tight = fidelity_aware_compress(self._waveform(), target_mse=1e-8)
        loose = fidelity_aware_compress(self._waveform(), target_mse=1e-4)
        assert loose.compression_ratio_variable >= tight.compression_ratio_variable
        assert loose.threshold >= tight.threshold

    def test_impossible_target_raises(self):
        """Algorithm 1 returns -1 when no threshold can meet epsilon;
        the quantization floor makes 1e-15 unreachable."""
        with pytest.raises(CompressionError):
            fidelity_aware_compress(self._waveform(), target_mse=1e-15)

    def test_invalid_target_rejected(self):
        with pytest.raises(CompressionError):
            fidelity_aware_compress(self._waveform(), target_mse=0.0)

    def test_compiler_fidelity_aware_mode(self, bogota):
        compiler = CompaqtCompiler(fidelity_aware=True, target_mse=1e-6)
        library = bogota.pulse_library().subset([("x", (0,)), ("cx", (0, 1))])
        compiled = compiler.compile_library(library)
        assert compiled.max_mse <= 1e-6
