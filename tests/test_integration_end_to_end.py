"""End-to-end integration: the full COMPAQT story in one test file.

Each test walks a complete paper pipeline across subpackage boundaries:
device -> compiler -> microarchitecture -> sequencer -> quantum
simulation, asserting the invariants that make the reproduction
trustworthy.
"""

import numpy as np
import pytest

from repro import (
    CompaqtCompiler,
    compress_waveform,
    ibm_device,
    qubits_supported,
)
from repro.circuits import ghz_circuit, qft_circuit, schedule_circuit, transpile
from repro.core.controller import QubitController
from repro.microarch import ControllerExecutor
from repro.quantum import (
    IBM_LIKE_NOISE,
    StatevectorSimulator,
    compression_error_map,
    tvd_fidelity,
)


@pytest.fixture(scope="module")
def bogota():
    return ibm_device("bogota")


@pytest.fixture(scope="module")
def controller(bogota):
    return QubitController(bogota)


class TestCompileLoadPlay:
    """Fig 6 end to end: compile-time compression, runtime streaming."""

    def test_every_library_entry_streams_exactly(self, controller):
        """All 23 Bogota waveforms survive the full compress -> bank ->
        fetch -> RLE -> IDCT -> DAC path bit-exactly."""
        for gate, qubits in controller.library.keys():
            report = controller.play(gate, qubits)
            played = controller.played_waveform(gate, qubits)
            i_codes, q_codes = played.to_fixed_point()
            np.testing.assert_array_equal(
                report.i_samples, i_codes.astype(np.int64)
            )
            np.testing.assert_array_equal(
                report.q_samples, q_codes.astype(np.int64)
            )
            assert report.sustains_dac

    def test_full_circuit_execution_traffic(self, controller, bogota):
        """A routed, scheduled circuit executes with ~5.33x less memory
        traffic than uncompressed streaming."""
        circuit = transpile(qft_circuit(3), bogota.topology)
        schedule = schedule_circuit(circuit, device=bogota)
        trace = ControllerExecutor(controller).run_circuit(schedule)
        assert trace.bandwidth_gain > 4.5
        assert trace.plays >= circuit.cx_count


class TestFidelityChain:
    """Compression -> pulse distortion -> circuit fidelity."""

    def test_compressed_circuit_fidelity_neutral(self, bogota):
        compiled = CompaqtCompiler(window_size=16).compile_library(
            bogota.pulse_library()
        )
        errors = compression_error_map(bogota, compiled)
        circuit = transpile(ghz_circuit(3), bogota.topology)
        ideal = StatevectorSimulator().ideal_distribution(circuit)
        base = StatevectorSimulator(noise=IBM_LIKE_NOISE, seed=17)
        comp = StatevectorSimulator(
            noise=IBM_LIKE_NOISE, gate_errors=errors, seed=17
        )
        f_base = tvd_fidelity(ideal, base.distribution(circuit, 2048))
        f_comp = tvd_fidelity(ideal, comp.distribution(circuit, 2048))
        assert abs(f_base - f_comp) < 0.03  # within shot noise

    def test_severe_distortion_is_detectable(self, bogota):
        """Sanity: the chain is sensitive -- butchered pulses DO hurt.

        (Guards against the fidelity chain being a tautology.)"""
        from repro.quantum import average_gate_fidelity, gate_error_unitary

        wf = bogota.pulse_library().waveform("sx", (0,))
        butchered = compress_waveform(
            wf, window_size=16, threshold=8192, max_coefficients=1
        )
        error = gate_error_unitary(wf, butchered.reconstructed, "sx")
        assert 1 - average_gate_fidelity(error, np.eye(2)) > 1e-3


class TestScalabilityChain:
    """Compression ratio -> BRAM count -> qubits -> logical qubits."""

    def test_numbers_are_consistent(self, controller):
        from repro.core import logical_qubits_supported, qubit_gain

        # worst-case words measured from the real library...
        words = controller.library.worst_case_window_words
        assert words == 3
        # ...feed the gain formula...
        gain = qubit_gain(16, worst_case_words=words)
        assert gain == pytest.approx(16 / 3)
        # ...which anchors the qubit and logical-qubit counts.
        assert qubits_supported(16) == int(36 * gain)
        assert logical_qubits_supported(17, 16) == int(36 * gain) // 17


class TestPublicApi:
    def test_top_level_exports_work(self):
        import repro

        assert repro.__version__
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_error_hierarchy(self):
        from repro import (
            CompressionError,
            DeviceError,
            ReproError,
            ScheduleError,
            SimulationError,
        )

        for exc in (CompressionError, DeviceError, ScheduleError, SimulationError):
            assert issubclass(exc, ReproError)
