"""Tests for topologies and synthetic device models."""

import numpy as np
import pytest

from repro.errors import DeviceError
from repro.devices import (
    CouplingMap,
    FALCON_27_EDGES,
    ccz_waveform,
    complex_gate_library,
    fluxonium_device,
    google_device,
    grid_topology,
    heavy_hex_rows,
    ibm_device,
    itoffoli_waveform,
    linear_topology,
    toffoli_waveform,
)


class TestCouplingMap:
    def test_linear(self):
        topo = linear_topology(5)
        assert topo.n_qubits == 5
        assert len(topo.edges) == 4
        assert topo.neighbors(2) == [1, 3]
        assert topo.degree(0) == 1

    def test_grid(self):
        topo = grid_topology(3, 4)
        assert topo.n_qubits == 12
        assert len(topo.edges) == 3 * 3 + 2 * 4  # horizontal + vertical
        assert topo.are_coupled(0, 1)
        assert topo.are_coupled(0, 4)
        assert not topo.are_coupled(0, 5)

    def test_directed_edges_double(self):
        topo = linear_topology(4)
        assert len(topo.directed_edges) == 2 * len(topo.edges)

    def test_shortest_path(self):
        topo = linear_topology(6)
        assert topo.shortest_path(0, 3) == [0, 1, 2, 3]

    def test_invalid_edge_rejected(self):
        with pytest.raises(DeviceError):
            CouplingMap(n_qubits=2, edges=((0, 2),))
        with pytest.raises(DeviceError):
            CouplingMap(n_qubits=2, edges=((1, 1),))

    def test_unknown_qubit_rejected(self):
        with pytest.raises(DeviceError):
            linear_topology(3).neighbors(7)

    def test_mean_degree(self):
        assert linear_topology(3).mean_degree == pytest.approx(4 / 3)


class TestHeavyHex:
    def test_falcon_27_shape(self):
        topo = CouplingMap(n_qubits=27, edges=FALCON_27_EDGES)
        assert topo.n_qubits == 27
        assert max(topo.degree(q) for q in range(27)) <= 3
        assert topo.is_connected()

    def test_hummingbird_65(self):
        topo = heavy_hex_rows(5, 11)
        assert topo.n_qubits == 65
        assert topo.is_connected()
        assert max(topo.degree(q) for q in range(65)) <= 3

    def test_eagle_127(self):
        topo = heavy_hex_rows(7, 15)
        assert topo.n_qubits == 127
        assert topo.is_connected()
        assert max(topo.degree(q) for q in range(127)) <= 3

    def test_too_small_rejected(self):
        with pytest.raises(DeviceError):
            heavy_hex_rows(1, 11)


class TestIbmDevices:
    def test_catalog_sizes(self):
        expected = {
            "bogota": 5,
            "lima": 5,
            "guadalupe": 16,
            "toronto": 27,
            "hanoi": 27,
            "montreal": 27,
            "mumbai": 27,
            "brooklyn": 65,
            "washington": 127,
        }
        for name, n in expected.items():
            assert ibm_device(name).n_qubits == n

    def test_name_prefixes_accepted(self):
        assert ibm_device("ibmq_bogota").name == "ibm_bogota"
        assert ibm_device("IBM_GUADALUPE").n_qubits == 16

    def test_unknown_device_rejected(self):
        with pytest.raises(DeviceError):
            ibm_device("atlantis")

    def test_deterministic_calibrations(self):
        a = ibm_device("bogota").pulse_library()
        b = ibm_device("bogota").pulse_library()
        wa = a.waveform("x", (2,))
        wb = b.waveform("x", (2,))
        np.testing.assert_array_equal(wa.samples, wb.samples)

    def test_qubits_have_unique_pulses(self):
        """Fig 4: every qubit's pi-pulse differs."""
        lib = ibm_device("guadalupe").pulse_library()
        shapes = [lib.waveform("x", (q,)).samples for q in range(16)]
        for i in range(16):
            for j in range(i + 1, 16):
                assert not np.array_equal(shapes[i], shapes[j])

    def test_memory_per_qubit_near_18kb(self):
        """Table I: ~18 KB of waveform memory per qubit on IBM."""
        device = ibm_device("guadalupe")
        assert 14e3 <= device.memory_per_qubit_bytes() <= 22e3

    def test_library_inventory(self):
        device = ibm_device("bogota")  # linear, 4 undirected edges
        lib = device.pulse_library()
        # 5 x + 5 sx + 5 measure + 8 directed cx
        assert len(lib) == 23

    def test_gate_durations(self):
        device = ibm_device("bogota")
        assert device.gate_duration_samples("rz", (0,)) == 0
        assert device.gate_duration_samples("x", (0,)) == 144
        assert device.gate_duration("x", (0,)) == pytest.approx(144 / 4.54e9)
        assert device.gate_duration_samples("cx", (0, 1)) % 16 == 0
        with pytest.raises(DeviceError):
            device.gate_duration_samples("h", (0,))

    def test_cr_missing_edge_raises(self):
        device = ibm_device("bogota")
        with pytest.raises(DeviceError):
            device.edge_calibration(0, 4)

    def test_sampling_rate(self):
        assert ibm_device("bogota").sampling_rate == pytest.approx(4.54e9)

    def test_waveform_amplitudes_valid(self):
        lib = ibm_device("lima").pulse_library()
        for wf in lib:
            assert np.max(np.abs(wf.samples)) <= 1.0 + 1e-9


class TestOtherDevices:
    def test_google_device(self):
        device = google_device()
        assert device.n_qubits == 54
        assert device.sampling_rate == pytest.approx(1e9)
        assert device.sample_bits == 28
        assert device.two_qubit_gate == "iswap"
        assert device.gate_duration_samples("x", (0,)) == 25

    def test_google_memory_per_qubit_small(self):
        """Table I: Google needs ~3 KB/qubit (short gates, slow DAC)."""
        device = google_device()
        assert device.memory_per_qubit_bytes() < 8e3

    def test_fluxonium_library(self):
        device = fluxonium_device(3)
        lib = device.pulse_library()
        assert len(lib) == 12  # 4 gates x 3 qubits
        for wf in lib:
            assert np.max(np.abs(wf.samples)) <= 1.0 + 1e-9

    def test_complex_gates(self):
        waves = complex_gate_library()
        assert [w.gate for w in waves] == ["itoffoli", "toffoli", "ccz"]
        for wf in waves:
            assert wf.qubits == (0, 1, 2)
            assert np.max(np.abs(wf.samples)) <= 1.0 + 1e-9

    def test_complex_gates_deterministic(self):
        np.testing.assert_array_equal(
            toffoli_waveform().samples, toffoli_waveform().samples
        )
        np.testing.assert_array_equal(ccz_waveform().samples, ccz_waveform().samples)

    def test_itoffoli_is_flat_top(self):
        wf = itoffoli_waveform()
        mags = np.abs(wf.samples)
        center = mags[wf.n_samples // 2 - 50 : wf.n_samples // 2 + 50]
        assert np.ptp(center) < 1e-9
