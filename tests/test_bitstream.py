"""Wire-format tests: lossless round-trips and total, garbage-free parsing.

Two properties lock the bitstream down:

* **round-trip** -- ``parse(serialize(x)) == x`` for every compressed
  waveform/library, and ``serialize(parse(b)) == b`` for every stream
  the serializer produced (canonical encoding);
* **totality** -- malformed bytes (truncation, bad magic, unknown tags,
  runs overflowing the window, trailing garbage, random fuzz) raise
  :class:`~repro.errors.CompressionError`; the parser never emits
  garbage samples or any other exception type.
"""

import struct

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CompressionError
from repro.compression import (
    compress_waveform,
    decompress_waveform,
    parse_library,
    parse_waveform,
    serialize_library,
    serialize_waveform,
)
from repro.compression.bitstream import (
    LIBRARY_MAGIC,
    WAVEFORM_MAGIC,
    LibraryBitstream,
    LibraryEntry,
)
from repro.compression.pipeline import CompressedChannel, CompressedWaveform
from repro.core import CompaqtCompiler, CompressedPulseLibrary
from repro.devices import ibm_device
from repro.microarch import DecompressionPipeline
from repro.pulses import Waveform
from repro.transforms.rle import EncodedWindow


def _make_waveform(n=40, name="wf", gate="x", qubits=(0,)):
    t = np.linspace(0, 1, n)
    samples = 0.6 * np.exp(-(((t - 0.5) / 0.2) ** 2)) * (1 + 0.4j)
    return Waveform(name, samples, dt=1e-9, gate=gate, qubits=qubits)


def _compressed(n=40, variant="int-DCT-W", window_size=16, **kwargs):
    return compress_waveform(
        _make_waveform(n, **kwargs), window_size=window_size, variant=variant
    ).compressed


def _single_window_waveform(coeffs, zero_run, window_size=16):
    """Build a CompressedWaveform around one hand-made window pair."""
    window = EncodedWindow(coeffs=tuple(coeffs), zero_run=zero_run)
    channel = CompressedChannel(
        windows=(window,),
        variant="int-DCT-W",
        window_size=window_size,
        original_length=window_size,
    )
    return CompressedWaveform(
        name="w", gate="x", qubits=(0,), dt=1e-9, i_channel=channel,
        q_channel=channel,
    )


class TestWaveformRoundTrip:
    @pytest.mark.parametrize("variant", ("DCT-N", "DCT-W", "int-DCT-W"))
    @pytest.mark.parametrize("window_size", (8, 16, 32))
    def test_lossless_and_canonical(self, variant, window_size):
        compressed = _compressed(variant=variant, window_size=window_size)
        blob = serialize_waveform(compressed)
        assert blob.startswith(WAVEFORM_MAGIC)
        parsed = parse_waveform(blob)
        assert parsed == compressed
        assert serialize_waveform(parsed) == blob

    def test_decode_after_round_trip_bit_identical(self):
        compressed = _compressed()
        parsed = parse_waveform(serialize_waveform(compressed))
        np.testing.assert_array_equal(
            decompress_waveform(parsed).samples,
            decompress_waveform(compressed).samples,
        )

    def test_binding_preserved(self):
        compressed = _compressed(
            name="cx_q3_q7", gate="cx", qubits=(3, 7)
        )
        parsed = parse_waveform(serialize_waveform(compressed))
        assert parsed.name == "cx_q3_q7"
        assert parsed.gate == "cx"
        assert parsed.qubits == (3, 7)
        assert parsed.dt == compressed.dt

    @given(
        n=st.integers(min_value=1, max_value=120),
        threshold=st.integers(min_value=0, max_value=2000),
        variant=st.sampled_from(("DCT-N", "DCT-W", "int-DCT-W")),
        window_size=st.sampled_from((8, 16, 32)),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_fuzz_round_trip(self, n, threshold, variant, window_size, seed):
        rng = np.random.default_rng(seed)
        samples = 0.65 * (rng.uniform(-1, 1, n) + 1j * rng.uniform(-1, 1, n))
        waveform = Waveform("fuzz", samples / max(1.0, np.max(np.abs(samples))),
                            dt=1e-9, gate="x", qubits=(0,))
        compressed = compress_waveform(
            waveform, window_size=window_size, variant=variant,
            threshold=threshold,
        ).compressed
        blob = serialize_waveform(compressed)
        parsed = parse_waveform(blob)
        assert parsed == compressed
        assert serialize_waveform(parsed) == blob
        np.testing.assert_array_equal(
            decompress_waveform(parsed).samples,
            decompress_waveform(compressed).samples,
        )


class TestLibraryRoundTrip:
    @pytest.fixture(scope="class")
    def compiled(self):
        return CompaqtCompiler(window_size=16).compile_library(
            ibm_device("bogota").pulse_library()
        )

    def test_library_lossless_and_canonical(self, compiled):
        blob = compiled.to_bytes()
        assert blob.startswith(LIBRARY_MAGIC)
        assert serialize_library(parse_library(blob)) == blob
        loaded = CompressedPulseLibrary.from_bytes(blob)
        assert loaded.device_name == compiled.device_name
        assert loaded.window_size == compiled.window_size
        assert loaded.variant == compiled.variant
        assert set(loaded.keys()) == set(compiled.keys())
        for key in compiled.keys():
            original = compiled.result(*key)
            twin = loaded.result(*key)
            assert twin.compressed == original.compressed
            assert twin.mse == original.mse
            assert twin.threshold == original.threshold
            np.testing.assert_array_equal(
                twin.reconstructed.samples, original.reconstructed.samples
            )

    def test_save_load_file(self, compiled, tmp_path):
        path = compiled.save(tmp_path / "bogota.cqt")
        loaded = CompaqtCompiler.load_library(path)
        assert loaded.to_bytes() == compiled.to_bytes()
        assert loaded.overall_ratio == compiled.overall_ratio

    def test_empty_library_round_trips(self):
        stream = LibraryBitstream(
            device_name="empty", window_size=16, variant="int-DCT-W", entries=()
        )
        blob = serialize_library(stream)
        assert parse_library(blob) == stream
        assert serialize_library(parse_library(blob)) == blob

    def test_entry_metrics_are_exact_float64(self):
        compressed = _compressed()
        entry = LibraryEntry(
            gate="x", qubits=(0,), mse=1.2345678912345e-7,
            threshold=128.5, compressed=compressed,
        )
        stream = LibraryBitstream(
            device_name="d", window_size=16, variant="int-DCT-W",
            entries=(entry,),
        )
        parsed = parse_library(serialize_library(stream))
        assert parsed.entries[0].mse == entry.mse
        assert parsed.entries[0].threshold == entry.threshold


class TestMicroarchConsumesBitstreams:
    def test_stream_bitstream_bit_identical(self):
        compressed = _compressed()
        report = DecompressionPipeline(16).stream_bitstream(
            serialize_waveform(compressed)
        )
        reference = decompress_waveform(compressed)
        i_codes, q_codes = reference.to_fixed_point()
        np.testing.assert_array_equal(report.i_samples, i_codes.astype(np.int64))
        np.testing.assert_array_equal(report.q_samples, q_codes.astype(np.int64))

    def test_stream_bitstream_rejects_garbage(self):
        with pytest.raises(CompressionError):
            DecompressionPipeline(16).stream_bitstream(b"not a bitstream")


class TestMalformedInputs:
    """Every corruption raises CompressionError -- never garbage samples."""

    def test_truncated_stream_every_prefix(self):
        blob = serialize_waveform(_compressed(n=24))
        for cut in range(len(blob)):
            with pytest.raises(CompressionError):
                parse_waveform(blob[:cut])

    def test_truncated_library(self):
        blob = CompaqtCompiler().compile_library(
            ibm_device("bogota").pulse_library()
        ).to_bytes()
        for cut in (0, 3, 10, len(blob) // 2, len(blob) - 1):
            with pytest.raises(CompressionError):
                parse_library(blob[:cut])

    def test_trailing_garbage_rejected(self):
        blob = serialize_waveform(_compressed())
        with pytest.raises(CompressionError, match="trailing"):
            parse_waveform(blob + b"\x00")
        lib_blob = serialize_library(
            LibraryBitstream("d", 16, "int-DCT-W", ())
        )
        with pytest.raises(CompressionError, match="trailing"):
            parse_library(lib_blob + b"junk")

    def test_bad_magic(self):
        blob = serialize_waveform(_compressed())
        with pytest.raises(CompressionError, match="magic"):
            parse_waveform(b"XXXX" + blob[4:])
        with pytest.raises(CompressionError, match="magic"):
            parse_library(b"XXXX" + blob[4:])

    def test_magic_confusion_rejected(self):
        """A waveform record is not a library container and vice versa."""
        waveform_blob = serialize_waveform(_compressed())
        with pytest.raises(CompressionError):
            parse_library(waveform_blob)
        library_blob = serialize_library(
            LibraryBitstream("d", 16, "int-DCT-W", ())
        )
        with pytest.raises(CompressionError):
            parse_waveform(library_blob)

    def test_bad_variant_id(self):
        blob = bytearray(serialize_waveform(_compressed()))
        blob[4] = 0x7F
        with pytest.raises(CompressionError, match="variant"):
            parse_waveform(bytes(blob))

    def test_reserved_flags_rejected(self):
        blob = bytearray(serialize_waveform(_compressed()))
        blob[5] = 0x01
        with pytest.raises(CompressionError, match="flags"):
            parse_waveform(bytes(blob))

    # -- word-level corruptions ------------------------------------------

    @staticmethod
    def _patch_word(blob: bytes, old_word: int, new_word: int) -> bytes:
        needle = struct.pack("<I", old_word)
        index = blob.index(needle)
        return blob[:index] + struct.pack("<I", new_word) + blob[index + 4 :]

    def test_unknown_tag_rejected(self):
        # One window: coefficient 9999, then a 15-zero run codeword.
        blob = serialize_waveform(_single_window_waveform((9999,), 15))
        for bad_tag in (2, 3):  # repeat / undefined
            patched = self._patch_word(blob, 9999, (bad_tag << 16) | 9999)
            with pytest.raises(CompressionError, match="tag"):
                parse_waveform(patched)

    def test_reserved_word_bits_rejected(self):
        blob = serialize_waveform(_single_window_waveform((9999,), 15))
        patched = self._patch_word(blob, 9999, (1 << 20) | 9999)
        with pytest.raises(CompressionError, match="reserved"):
            parse_waveform(patched)

    def test_run_overflowing_window_rejected(self):
        blob = serialize_waveform(_single_window_waveform((9999,), 15))
        run_word = (1 << 16) | 15
        patched = self._patch_word(blob, run_word, (1 << 16) | 0xFFFF)
        with pytest.raises(CompressionError, match="decodes to"):
            parse_waveform(patched)

    def test_run_underfilling_window_rejected(self):
        blob = serialize_waveform(_single_window_waveform((9999,), 15))
        run_word = (1 << 16) | 15
        patched = self._patch_word(blob, run_word, (1 << 16) | 3)
        with pytest.raises(CompressionError, match="decodes to"):
            parse_waveform(patched)

    def test_empty_zero_run_rejected(self):
        blob = serialize_waveform(_single_window_waveform((9999,), 15))
        run_word = (1 << 16) | 15
        patched = self._patch_word(blob, run_word, 1 << 16)
        with pytest.raises(CompressionError):
            parse_waveform(patched)

    def test_word_after_codeword_rejected(self):
        # Stream [coeff 9999, coeff 7777, run 14]; turning the first
        # coefficient into a 14-run leaves payload after the codeword.
        blob = serialize_waveform(_single_window_waveform((9999, 7777), 14))
        patched = self._patch_word(blob, 9999, (1 << 16) | 14)
        with pytest.raises(CompressionError, match="codeword"):
            parse_waveform(patched)

    def test_serializer_validations(self):
        oversized = _single_window_waveform((70000,), 15)
        with pytest.raises(CompressionError, match="16-bit"):
            serialize_waveform(oversized)

    def test_mixed_channel_variants_rejected_at_serialize(self):
        """A record stores one variant id; channels that disagree would
        silently decode the Q channel through the wrong inverse."""
        base = _single_window_waveform((9999,), 15)
        mixed = CompressedWaveform(
            name="w", gate="x", qubits=(0,), dt=1e-9,
            i_channel=base.i_channel,
            q_channel=CompressedChannel(
                windows=base.q_channel.windows,
                variant="DCT-W",
                window_size=base.q_channel.window_size,
                original_length=base.q_channel.original_length,
            ),
        )
        with pytest.raises(CompressionError, match="variant"):
            serialize_waveform(mixed)

    def test_entry_variant_mismatch_fails_at_save(self):
        """A container is single-variant; saving a stray entry must fail
        immediately, not produce bytes that can never load."""
        compressed = _compressed(variant="DCT-W")
        stream = LibraryBitstream(
            device_name="d", window_size=16, variant="int-DCT-W",
            entries=(
                LibraryEntry(
                    gate="x", qubits=(0,), mse=0.0, threshold=128.0,
                    compressed=compressed,
                ),
            ),
        )
        with pytest.raises(CompressionError, match="container variant"):
            serialize_library(stream)

    def test_entry_binding_mismatch_rejected_both_ways(self):
        compressed = _compressed(gate="x", qubits=(0,))
        stream = LibraryBitstream(
            device_name="d", window_size=16, variant="int-DCT-W",
            entries=(
                LibraryEntry(
                    gate="sx", qubits=(0,), mse=0.0, threshold=128.0,
                    compressed=compressed,
                ),
            ),
        )
        with pytest.raises(CompressionError, match="binding"):
            serialize_library(stream)
        # A foreign stream where the duplicated binding disagrees with
        # the embedded record must not parse into inconsistent metadata.
        good = serialize_library(
            LibraryBitstream(
                device_name="d", window_size=16, variant="int-DCT-W",
                entries=(
                    LibraryEntry(
                        gate="x", qubits=(0,), mse=0.0, threshold=128.0,
                        compressed=compressed,
                    ),
                ),
            )
        )
        # Entry gate "x" appears (length-prefixed) after the u32 entry
        # count; patch that first occurrence to "y".
        header_end = good.index(b"\x01\x00x") + 2
        patched = good[:header_end] + b"y" + good[header_end + 1 :]
        with pytest.raises(CompressionError, match="binding"):
            parse_library(patched)

    @given(data=st.binary(max_size=300))
    @settings(max_examples=120, deadline=None)
    def test_random_bytes_never_crash(self, data):
        """Fuzz totality: arbitrary bytes either parse (practically
        impossible) or raise CompressionError -- nothing else."""
        for parser in (parse_waveform, parse_library):
            try:
                parser(data)
            except CompressionError:
                pass

    @given(cut=st.integers(min_value=0, max_value=10**6), seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=60, deadline=None)
    def test_bitflip_fuzz(self, cut, seed):
        """Single corrupted byte in a valid stream: parse must either
        reject it or decode without crashing (a flipped coefficient bit
        can still be a valid stream -- but never an undefined error)."""
        blob = bytearray(serialize_waveform(_compressed(n=24)))
        rng = np.random.default_rng(seed)
        index = cut % len(blob)
        blob[index] ^= int(rng.integers(1, 256))
        try:
            parse_waveform(bytes(blob))
        except CompressionError:
            pass
