"""Wire-format tests: lossless round-trips and total, garbage-free parsing.

Two properties lock the bitstream down:

* **round-trip** -- ``parse(serialize(x)) == x`` for every compressed
  waveform/library, and ``serialize(parse(b)) == b`` for every stream
  the serializer produced (canonical encoding);
* **totality** -- malformed bytes (truncation, bad magic, unknown tags,
  runs overflowing the window, trailing garbage, random fuzz) raise
  :class:`~repro.errors.CompressionError`; the parser never emits
  garbage samples or any other exception type.
"""

import struct

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CompressionError
from repro.compression import (
    compress_waveform,
    decompress_waveform,
    parse_library,
    parse_waveform,
    serialize_library,
    serialize_waveform,
)
from repro.compression.bitstream import (
    LIBRARY_MAGIC,
    WAVEFORM_MAGIC,
    LibraryBitstream,
    LibraryEntry,
)
from repro.compression.pipeline import CompressedChannel, CompressedWaveform
from repro.core import CompaqtCompiler, CompressedPulseLibrary
from repro.devices import ibm_device
from repro.microarch import DecompressionPipeline
from repro.pulses import Waveform
from repro.transforms.rle import EncodedWindow


def _make_waveform(n=40, name="wf", gate="x", qubits=(0,)):
    t = np.linspace(0, 1, n)
    samples = 0.6 * np.exp(-(((t - 0.5) / 0.2) ** 2)) * (1 + 0.4j)
    return Waveform(name, samples, dt=1e-9, gate=gate, qubits=qubits)


def _compressed(n=40, variant="int-DCT-W", window_size=16, **kwargs):
    return compress_waveform(
        _make_waveform(n, **kwargs), window_size=window_size, variant=variant
    ).compressed


def _single_window_waveform(coeffs, zero_run, window_size=16):
    """Build a CompressedWaveform around one hand-made window pair."""
    window = EncodedWindow(coeffs=tuple(coeffs), zero_run=zero_run)
    channel = CompressedChannel(
        windows=(window,),
        variant="int-DCT-W",
        window_size=window_size,
        original_length=window_size,
    )
    return CompressedWaveform(
        name="w", gate="x", qubits=(0,), dt=1e-9, i_channel=channel,
        q_channel=channel,
    )


#: Every registered codec name.
ALL_VARIANTS = ("DCT-N", "DCT-W", "int-DCT-W", "delta", "dictionary")


class TestWaveformRoundTrip:
    @pytest.mark.parametrize("variant", ALL_VARIANTS)
    @pytest.mark.parametrize("window_size", (8, 16, 32))
    def test_lossless_and_canonical(self, variant, window_size):
        compressed = _compressed(variant=variant, window_size=window_size)
        blob = serialize_waveform(compressed)
        assert blob.startswith(WAVEFORM_MAGIC)
        parsed = parse_waveform(blob)
        assert parsed == compressed
        assert serialize_waveform(parsed) == blob

    def test_decode_after_round_trip_bit_identical(self):
        compressed = _compressed()
        parsed = parse_waveform(serialize_waveform(compressed))
        np.testing.assert_array_equal(
            decompress_waveform(parsed).samples,
            decompress_waveform(compressed).samples,
        )

    def test_binding_preserved(self):
        compressed = _compressed(
            name="cx_q3_q7", gate="cx", qubits=(3, 7)
        )
        parsed = parse_waveform(serialize_waveform(compressed))
        assert parsed.name == "cx_q3_q7"
        assert parsed.gate == "cx"
        assert parsed.qubits == (3, 7)
        assert parsed.dt == compressed.dt

    @given(
        n=st.integers(min_value=1, max_value=120),
        threshold=st.integers(min_value=0, max_value=2000),
        variant=st.sampled_from(ALL_VARIANTS),
        window_size=st.sampled_from((8, 16, 32)),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_fuzz_round_trip(self, n, threshold, variant, window_size, seed):
        rng = np.random.default_rng(seed)
        samples = 0.65 * (rng.uniform(-1, 1, n) + 1j * rng.uniform(-1, 1, n))
        waveform = Waveform("fuzz", samples / max(1.0, np.max(np.abs(samples))),
                            dt=1e-9, gate="x", qubits=(0,))
        compressed = compress_waveform(
            waveform, window_size=window_size, variant=variant,
            threshold=threshold,
        ).compressed
        blob = serialize_waveform(compressed)
        parsed = parse_waveform(blob)
        assert parsed == compressed
        assert serialize_waveform(parsed) == blob
        np.testing.assert_array_equal(
            decompress_waveform(parsed).samples,
            decompress_waveform(compressed).samples,
        )


class TestLibraryRoundTrip:
    @pytest.fixture(scope="class")
    def compiled(self):
        return CompaqtCompiler(window_size=16).compile_library(
            ibm_device("bogota").pulse_library()
        )

    def test_library_lossless_and_canonical(self, compiled):
        blob = compiled.to_bytes()
        assert blob.startswith(LIBRARY_MAGIC)
        assert serialize_library(parse_library(blob)) == blob
        loaded = CompressedPulseLibrary.from_bytes(blob)
        assert loaded.device_name == compiled.device_name
        assert loaded.window_size == compiled.window_size
        assert loaded.variant == compiled.variant
        assert set(loaded.keys()) == set(compiled.keys())
        for key in compiled.keys():
            original = compiled.result(*key)
            twin = loaded.result(*key)
            assert twin.compressed == original.compressed
            assert twin.mse == original.mse
            assert twin.threshold == original.threshold
            np.testing.assert_array_equal(
                twin.reconstructed.samples, original.reconstructed.samples
            )

    def test_save_load_file(self, compiled, tmp_path):
        path = compiled.save(tmp_path / "bogota.cqt")
        loaded = CompaqtCompiler.load_library(path)
        assert loaded.to_bytes() == compiled.to_bytes()
        assert loaded.overall_ratio == compiled.overall_ratio

    def test_empty_library_round_trips(self):
        stream = LibraryBitstream(
            device_name="empty", window_size=16, variant="int-DCT-W", entries=()
        )
        blob = serialize_library(stream)
        assert parse_library(blob) == stream
        assert serialize_library(parse_library(blob)) == blob

    def test_entry_metrics_are_exact_float64(self):
        compressed = _compressed()
        entry = LibraryEntry(
            gate="x", qubits=(0,), mse=1.2345678912345e-7,
            threshold=128.5, compressed=compressed,
        )
        stream = LibraryBitstream(
            device_name="d", window_size=16, variant="int-DCT-W",
            entries=(entry,),
        )
        parsed = parse_library(serialize_library(stream))
        assert parsed.entries[0].mse == entry.mse
        assert parsed.entries[0].threshold == entry.threshold


class TestMicroarchConsumesBitstreams:
    def test_stream_bitstream_bit_identical(self):
        compressed = _compressed()
        report = DecompressionPipeline(16).stream_bitstream(
            serialize_waveform(compressed)
        )
        reference = decompress_waveform(compressed)
        i_codes, q_codes = reference.to_fixed_point()
        np.testing.assert_array_equal(report.i_samples, i_codes.astype(np.int64))
        np.testing.assert_array_equal(report.q_samples, q_codes.astype(np.int64))

    def test_stream_bitstream_rejects_garbage(self):
        with pytest.raises(CompressionError):
            DecompressionPipeline(16).stream_bitstream(b"not a bitstream")


class TestMalformedInputs:
    """Every corruption raises CompressionError -- never garbage samples."""

    def test_truncated_stream_every_prefix(self):
        blob = serialize_waveform(_compressed(n=24))
        for cut in range(len(blob)):
            with pytest.raises(CompressionError):
                parse_waveform(blob[:cut])

    def test_truncated_library(self):
        blob = CompaqtCompiler().compile_library(
            ibm_device("bogota").pulse_library()
        ).to_bytes()
        for cut in (0, 3, 10, len(blob) // 2, len(blob) - 1):
            with pytest.raises(CompressionError):
                parse_library(blob[:cut])

    def test_trailing_garbage_rejected(self):
        blob = serialize_waveform(_compressed())
        with pytest.raises(CompressionError, match="trailing"):
            parse_waveform(blob + b"\x00")
        lib_blob = serialize_library(
            LibraryBitstream("d", 16, "int-DCT-W", ())
        )
        with pytest.raises(CompressionError, match="trailing"):
            parse_library(lib_blob + b"junk")

    def test_bad_magic(self):
        blob = serialize_waveform(_compressed())
        with pytest.raises(CompressionError, match="magic"):
            parse_waveform(b"XXXX" + blob[4:])
        with pytest.raises(CompressionError, match="magic"):
            parse_library(b"XXXX" + blob[4:])

    def test_magic_confusion_rejected(self):
        """A waveform record is not a library container and vice versa."""
        waveform_blob = serialize_waveform(_compressed())
        with pytest.raises(CompressionError):
            parse_library(waveform_blob)
        library_blob = serialize_library(
            LibraryBitstream("d", 16, "int-DCT-W", ())
        )
        with pytest.raises(CompressionError):
            parse_waveform(library_blob)

    def test_bad_variant_id(self):
        blob = bytearray(serialize_waveform(_compressed()))
        blob[4] = 0x7F
        with pytest.raises(CompressionError, match="variant"):
            parse_waveform(bytes(blob))

    def test_reserved_flags_rejected(self):
        blob = bytearray(serialize_waveform(_compressed()))
        blob[5] = 0x01
        with pytest.raises(CompressionError, match="flags"):
            parse_waveform(bytes(blob))

    # -- word-level corruptions ------------------------------------------

    @staticmethod
    def _patch_word(blob: bytes, old_word: int, new_word: int) -> bytes:
        needle = struct.pack("<I", old_word)
        index = blob.index(needle)
        return blob[:index] + struct.pack("<I", new_word) + blob[index + 4 :]

    def test_unknown_tag_rejected(self):
        # One window: coefficient 9999, then a 15-zero run codeword.
        blob = serialize_waveform(_single_window_waveform((9999,), 15))
        for bad_tag in (2, 3):  # repeat / undefined
            patched = self._patch_word(blob, 9999, (bad_tag << 16) | 9999)
            with pytest.raises(CompressionError, match="tag"):
                parse_waveform(patched)

    def test_reserved_word_bits_rejected(self):
        blob = serialize_waveform(_single_window_waveform((9999,), 15))
        patched = self._patch_word(blob, 9999, (1 << 20) | 9999)
        with pytest.raises(CompressionError, match="reserved"):
            parse_waveform(patched)

    def test_run_overflowing_window_rejected(self):
        blob = serialize_waveform(_single_window_waveform((9999,), 15))
        run_word = (1 << 16) | 15
        patched = self._patch_word(blob, run_word, (1 << 16) | 0xFFFF)
        with pytest.raises(CompressionError, match="decodes to"):
            parse_waveform(patched)

    def test_run_underfilling_window_rejected(self):
        blob = serialize_waveform(_single_window_waveform((9999,), 15))
        run_word = (1 << 16) | 15
        patched = self._patch_word(blob, run_word, (1 << 16) | 3)
        with pytest.raises(CompressionError, match="decodes to"):
            parse_waveform(patched)

    def test_empty_zero_run_rejected(self):
        blob = serialize_waveform(_single_window_waveform((9999,), 15))
        run_word = (1 << 16) | 15
        patched = self._patch_word(blob, run_word, 1 << 16)
        with pytest.raises(CompressionError):
            parse_waveform(patched)

    def test_word_after_codeword_rejected(self):
        # Stream [coeff 9999, coeff 7777, run 14]; turning the first
        # coefficient into a 14-run leaves payload after the codeword.
        blob = serialize_waveform(_single_window_waveform((9999, 7777), 14))
        patched = self._patch_word(blob, 9999, (1 << 16) | 14)
        with pytest.raises(CompressionError, match="codeword"):
            parse_waveform(patched)

    def test_serializer_validations(self):
        oversized = _single_window_waveform((70000,), 15)
        with pytest.raises(CompressionError, match="16-bit"):
            serialize_waveform(oversized)

    def test_mixed_channel_variants_rejected_at_serialize(self):
        """A record stores one variant id; channels that disagree would
        silently decode the Q channel through the wrong inverse."""
        base = _single_window_waveform((9999,), 15)
        mixed = CompressedWaveform(
            name="w", gate="x", qubits=(0,), dt=1e-9,
            i_channel=base.i_channel,
            q_channel=CompressedChannel(
                windows=base.q_channel.windows,
                variant="DCT-W",
                window_size=base.q_channel.window_size,
                original_length=base.q_channel.original_length,
            ),
        )
        with pytest.raises(CompressionError, match="variant"):
            serialize_waveform(mixed)

    def test_entry_variant_mismatch_fails_at_save(self):
        """A container is single-variant; saving a stray entry must fail
        immediately, not produce bytes that can never load."""
        compressed = _compressed(variant="DCT-W")
        stream = LibraryBitstream(
            device_name="d", window_size=16, variant="int-DCT-W",
            entries=(
                LibraryEntry(
                    gate="x", qubits=(0,), mse=0.0, threshold=128.0,
                    compressed=compressed,
                ),
            ),
        )
        with pytest.raises(CompressionError, match="container variant"):
            serialize_library(stream)

    def test_entry_binding_mismatch_rejected_both_ways(self):
        compressed = _compressed(gate="x", qubits=(0,))
        stream = LibraryBitstream(
            device_name="d", window_size=16, variant="int-DCT-W",
            entries=(
                LibraryEntry(
                    gate="sx", qubits=(0,), mse=0.0, threshold=128.0,
                    compressed=compressed,
                ),
            ),
        )
        with pytest.raises(CompressionError, match="binding"):
            serialize_library(stream)
        # A foreign stream where the duplicated binding disagrees with
        # the embedded record must not parse into inconsistent metadata.
        good = serialize_library(
            LibraryBitstream(
                device_name="d", window_size=16, variant="int-DCT-W",
                entries=(
                    LibraryEntry(
                        gate="x", qubits=(0,), mse=0.0, threshold=128.0,
                        compressed=compressed,
                    ),
                ),
            )
        )
        # Entry gate "x" appears (length-prefixed) after the u32 entry
        # count; patch that first occurrence to "y".
        header_end = good.index(b"\x01\x00x") + 2
        patched = good[:header_end] + b"y" + good[header_end + 1 :]
        with pytest.raises(CompressionError, match="binding"):
            parse_library(patched)

#: Golden blobs produced by the pre-registry (v1, DCT-only) serializer.
#: The codec-id allocation must keep these parsing byte-for-byte: ids
#: 0..2 are frozen, and re-serializing must reproduce the exact bytes.
_GOLDEN_V1_WAVEFORM = bytes.fromhex(
    "435157310200100000000600676f6c64656e01007801000095d626e80b2e113e"
    "1c000000020000000400b0040000f9ff0000030000000d000100030000800000"
    "ff7f00000e0001001c000000020000000400b0040000f9ff0000030000000d00"
    "0100030000800000ff7f00000e000100"
)
_GOLDEN_V1_LIBRARY = bytes.fromhex(
    "43514c310200100000000900676f6c64656e64657601000000010078010000"
    "8dedb5a0f7c6803e00000000000060407000000043515731020010000000"
    "0600676f6c64656e01007801000095d626e80b2e113e1c0000000200000004"
    "00b0040000f9ff0000030000000d000100030000800000ff7f00000e000100"
    "1c000000020000000400b0040000f9ff0000030000000d000100030000"
    "800000ff7f00000e000100"
)
_GOLDEN_V1_DCT_N = bytes.fromhex(
    "435157310000100000000200673202007378020100020095d626e80b2ef13d"
    "10000000010000000400b0040000f9ff0000030000000d0001001000000001"
    "0000000400b0040000f9ff0000030000000d000100"
)
_GOLDEN_V1_DCT_W = bytes.fromhex(
    "435157310100100000000200673202007378020100020095d626e80b2ef13d"
    "10000000010000000400b0040000f9ff0000030000000d0001001000000001"
    "0000000400b0040000f9ff0000030000000d000100"
)


class TestGoldenV1Compatibility:
    """Pre-registry bitstreams must survive the codec-id reallocation."""

    def test_waveform_fields_decode_identically(self):
        parsed = parse_waveform(_GOLDEN_V1_WAVEFORM)
        assert parsed.variant == "int-DCT-W"
        assert parsed.window_size == 16
        assert parsed.name == "golden"
        assert parsed.gate == "x"
        assert parsed.qubits == (0,)
        assert parsed.dt == 1e-9
        assert parsed.i_channel.original_length == 28
        assert parsed.i_channel.windows == (
            EncodedWindow(coeffs=(1200, -7, 3), zero_run=13),
            EncodedWindow(coeffs=(-32768, 32767), zero_run=14),
        )
        assert parsed.q_channel == parsed.i_channel

    @pytest.mark.parametrize(
        "blob, variant",
        [
            (_GOLDEN_V1_WAVEFORM, "int-DCT-W"),
            (_GOLDEN_V1_DCT_N, "DCT-N"),
            (_GOLDEN_V1_DCT_W, "DCT-W"),
        ],
    )
    def test_waveform_reserializes_byte_for_byte(self, blob, variant):
        parsed = parse_waveform(blob)
        assert parsed.variant == variant
        assert serialize_waveform(parsed) == blob

    def test_library_reserializes_byte_for_byte(self):
        parsed = parse_library(_GOLDEN_V1_LIBRARY)
        assert parsed.device_name == "goldendev"
        assert parsed.variant == "int-DCT-W"
        assert parsed.window_size == 16
        assert len(parsed.entries) == 1
        assert parsed.entries[0].mse == 1.25e-07
        assert parsed.entries[0].threshold == 128.0
        assert serialize_library(parsed) == _GOLDEN_V1_LIBRARY

    def test_golden_decode_matches_functional_codec(self):
        from repro.compression.pipeline import decompress_channel

        parsed = parse_waveform(_GOLDEN_V1_WAVEFORM)
        report = DecompressionPipeline(16).stream_bitstream(_GOLDEN_V1_WAVEFORM)
        np.testing.assert_array_equal(
            report.i_samples, decompress_channel(parsed.i_channel)
        )
        np.testing.assert_array_equal(
            report.q_samples, decompress_channel(parsed.q_channel)
        )

    @given(
        index=st.integers(min_value=0, max_value=10**6),
        flip=st.integers(min_value=1, max_value=255),
    )
    @settings(max_examples=120, deadline=None)
    def test_golden_bytes_corruption_fuzz(self, index, flip):
        """Any single-byte corruption of a v1 stream either still parses
        (a flipped payload bit is a legal stream) or raises
        CompressionError -- never garbage or another exception type."""
        blob = bytearray(_GOLDEN_V1_WAVEFORM)
        blob[index % len(blob)] ^= flip
        try:
            parse_waveform(bytes(blob))
        except CompressionError:
            pass


class TestNewCodecStreams:
    """The reallocated codec ids round-trip the promoted codecs."""

    @pytest.mark.parametrize(
        "variant, wire_id", [("delta", 3), ("dictionary", 4)]
    )
    def test_codec_id_on_the_wire(self, variant, wire_id):
        blob = serialize_waveform(_compressed(variant=variant))
        assert blob[:4] == WAVEFORM_MAGIC
        assert blob[4] == wire_id
        assert blob[5] == 0  # flags stay reserved

    def test_dictionary_windows_carry_entry_slot(self):
        """A dictionary window decodes to window_size + 1 slots."""
        compressed = _compressed(n=32, variant="dictionary", window_size=16)
        parsed = parse_waveform(serialize_waveform(compressed))
        for window in parsed.i_channel.windows:
            assert len(window.coeffs) + window.zero_run == 17

    def test_unknown_codec_id_rejected(self):
        blob = bytearray(serialize_waveform(_compressed(variant="delta")))
        blob[4] = 0x7E
        with pytest.raises(CompressionError, match="variant id"):
            parse_waveform(bytes(blob))


class TestMalformedFuzz:
    @given(data=st.binary(max_size=300))
    @settings(max_examples=120, deadline=None)
    def test_random_bytes_never_crash(self, data):
        """Fuzz totality: arbitrary bytes either parse (practically
        impossible) or raise CompressionError -- nothing else."""
        for parser in (parse_waveform, parse_library):
            try:
                parser(data)
            except CompressionError:
                pass

    @given(cut=st.integers(min_value=0, max_value=10**6), seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=60, deadline=None)
    def test_bitflip_fuzz(self, cut, seed):
        """Single corrupted byte in a valid stream: parse must either
        reject it or decode without crashing (a flipped coefficient bit
        can still be a valid stream -- but never an undefined error)."""
        blob = bytearray(serialize_waveform(_compressed(n=24)))
        rng = np.random.default_rng(seed)
        index = cut % len(blob)
        blob[index] ^= int(rng.integers(1, 256))
        try:
            parse_waveform(bytes(blob))
        except CompressionError:
            pass
