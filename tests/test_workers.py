"""Tests for the multi-process decode pool and its serving integration.

The contract under test: every waveform served through a
:class:`~repro.serve_net.workers.DecodePool` is bit-identical to the
scalar decode path regardless of start method or transport (shared
memory or pipe fallback); a worker death fails only its in-flight keys
with a typed :class:`~repro.errors.DecodeWorkerError` and the pool
respawns; drain never deadlocks against concurrent submitters; every
shared-memory segment is unlinked by ``close``; and ``workers=0``
preserves the in-process serving behaviour exactly.  The client-side
retry-with-backoff policy rides along (same PR surface).
"""

import multiprocessing
import os
import pickle
import random
import signal
import threading
import time
from concurrent.futures import Future
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.compression.pipeline import decompress_waveform
from repro.core import CompaqtCompiler
from repro.devices import ibm_device
from repro.errors import DecodeWorkerError, ServerOverloadedError, StoreError
from repro.serve_net import (
    AsyncPulseClient,
    DecodePool,
    PulseClient,
    serve_in_thread,
)
from repro.serve_net.client import _retry_delay
from repro.store import PulseServer, StoreHandle, save_store

START_METHODS = [
    m for m in ("fork", "spawn") if m in multiprocessing.get_all_start_methods()
]


@pytest.fixture(scope="module")
def compiled():
    library = ibm_device("bogota").pulse_library()
    return CompaqtCompiler(window_size=16).compile_library(library)


@pytest.fixture(scope="module")
def store(compiled, tmp_path_factory):
    root = tmp_path_factory.mktemp("workers") / "bogota.cqs"
    return save_store(compiled, root, n_shards=3)


@pytest.fixture(scope="module")
def reference(store):
    """The scalar decode path: what every pool-served pulse must equal."""
    return {
        key: decompress_waveform(store.read_record(*key)).samples
        for key in store.keys()
    }


def _assert_identical(reference, keys, waveforms):
    __tracebackhide__ = True
    assert len(waveforms) == len(keys)
    for key, waveform in zip(keys, waveforms):
        assert np.array_equal(waveform.samples, reference[key]), key
        assert not waveform.samples.flags.writeable


class TestStoreHandle:
    def test_handle_is_picklable_and_reopens(self, store):
        handle = store.handle()
        assert isinstance(handle, StoreHandle)
        clone = pickle.loads(pickle.dumps(handle))
        reopened = clone.open()
        try:
            assert sorted(reopened.keys()) == sorted(store.keys())
        finally:
            reopened.close()

    def test_handle_equality(self, store):
        assert store.handle() == store.handle()


class TestPoolIdentity:
    @pytest.mark.parametrize("start_method", START_METHODS)
    def test_full_catalog_bit_identity(self, store, reference, start_method):
        keys = store.keys()
        with DecodePool(
            store.handle(), workers=2, start_method=start_method
        ) as pool:
            _assert_identical(reference, keys, pool.decode(keys))
            stats = pool.stats()
        assert stats.start_method == start_method
        assert stats.jobs_ok >= 1
        assert stats.shm_jobs >= 1  # default slab fits the catalog

    def test_order_preserved_with_duplicates(self, store, reference):
        keys = store.keys()
        requests = [keys[0], keys[-1], keys[0], keys[1], keys[0]]
        with DecodePool(store.handle(), workers=1) as pool:
            _assert_identical(reference, requests, pool.decode(requests))

    def test_unknown_key_is_typed_and_pool_survives(self, store, reference):
        keys = store.keys()
        with DecodePool(store.handle(), workers=1) as pool:
            with pytest.raises(StoreError) as excinfo:
                pool.decode([("no-such-gate", (0,))])
            assert not isinstance(excinfo.value, DecodeWorkerError)
            # The worker did not die; the next job decodes cleanly.
            _assert_identical(reference, keys, pool.decode(keys))
            assert pool.stats().worker_deaths == 0

    def test_validation(self, store):
        with pytest.raises(StoreError):
            DecodePool(store.handle(), workers=0)
        with pytest.raises(StoreError):
            DecodePool(store.handle(), workers=1, shm_limit=8)


class TestShmFallback:
    def test_undersized_slab_falls_back_bit_identically(self, store, reference):
        keys = store.keys()
        with DecodePool(store.handle(), workers=1, shm_limit=64) as pool:
            _assert_identical(reference, keys, pool.decode(keys))
            stats = pool.stats()
        assert stats.fallback_jobs >= 1
        assert stats.shm_jobs == 0


class TestWorkerCrash:
    @pytest.mark.parametrize("start_method", START_METHODS)
    def test_crash_fails_only_its_keys_then_respawns(
        self, store, reference, start_method
    ):
        keys = store.keys()
        with DecodePool(
            store.handle(), workers=1, start_method=start_method
        ) as pool:
            with pytest.raises(DecodeWorkerError):
                pool.decode(keys[:3], _crash_worker=True)
            # The respawned worker serves the very next job.
            _assert_identical(reference, keys, pool.decode(keys))
            stats = pool.stats()
        assert stats.worker_deaths == 1
        assert stats.respawns == 1

    def test_crashes_never_hang_concurrent_waiters(self, store, reference):
        keys = store.keys()
        outcomes = []
        lock = threading.Lock()

        with DecodePool(store.handle(), workers=2) as pool:
            def hammer(index):
                rng = random.Random(index)
                for _ in range(8):
                    crash = rng.random() < 0.3
                    try:
                        served = pool.decode(keys, _crash_worker=crash)
                    except DecodeWorkerError:
                        with lock:
                            outcomes.append("died")
                    else:
                        _assert_identical(reference, keys, served)
                        with lock:
                            outcomes.append("ok")

            threads = [
                threading.Thread(target=hammer, args=(i,)) for i in range(4)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
                assert not thread.is_alive(), "pool hung a coalesced waiter"
            stats = pool.stats()
        assert outcomes.count("died") == stats.worker_deaths
        assert stats.respawns == stats.worker_deaths
        assert outcomes.count("ok") == stats.jobs_ok
        assert outcomes.count("died") == stats.jobs_failed


class TestDispatcherContainment:
    """The dispatcher thread must survive (or contain) every race.

    A worker can die immediately *after* shipping its result: the
    dispatcher then sees an EOF for a slot whose future is already
    resolved, and re-resolving it would kill the dispatcher thread
    with ``InvalidStateError`` -- stranding every later job forever.
    And should the dispatcher ever die of anything else, the pool
    must abort typed rather than hang its waiters.
    """

    def _decode_with_deadline(self, pool, keys, timeout=60):
        box = {}

        def run():
            try:
                box["served"] = pool.decode(keys)
            except BaseException as exc:
                box["raised"] = exc

        thread = threading.Thread(target=run)
        thread.start()
        thread.join(timeout=timeout)
        assert not thread.is_alive(), "pool.decode hung"
        return box

    def test_death_after_result_does_not_kill_the_dispatcher(
        self, store, reference
    ):
        keys = store.keys()
        with DecodePool(store.handle(), workers=1) as pool:
            # Recreate the race deterministically: the slot still
            # carries a *finished* future (caller not yet released)
            # when the worker's EOF arrives.
            slot = pool._slots[0]
            finished = Future()
            finished.set_result(("already", "resolved", None))
            with pool._cond:
                slot.job_id = 999
                slot.future = finished
            os.kill(slot.process.pid, signal.SIGKILL)
            deadline = time.time() + 30
            while pool.stats().worker_deaths < 1:
                assert time.time() < deadline, "worker death never detected"
                time.sleep(0.01)
            # The job succeeded before the death: it must not count as
            # failed, and the dispatcher must still be alive to serve
            # the respawned lane.
            assert pool.stats().jobs_failed == 0
            assert pool.stats().respawns == 1
            box = self._decode_with_deadline(pool, keys)
            _assert_identical(reference, keys, box["served"])

    @pytest.mark.filterwarnings(
        "ignore::pytest.PytestUnhandledThreadExceptionWarning"
    )
    def test_dispatcher_crash_aborts_typed_instead_of_hanging(self, store):
        keys = store.keys()
        pool = DecodePool(store.handle(), workers=2)
        names = [slot.shm.name for slot in pool._slots]

        def boom(slot, message):
            raise RuntimeError("injected dispatcher bug")

        pool._handle_result = boom
        box = self._decode_with_deadline(pool, keys)
        assert isinstance(box["raised"], DecodeWorkerError)
        # The pool is closed, later submitters fail typed, and every
        # segment is unlinked even on this path.  (Waiters are failed
        # *before* lane teardown, so give the teardown a moment.)
        with pytest.raises(DecodeWorkerError):
            pool.decode(keys)
        deadline = time.time() + 30

        def unlinked(name):
            try:
                segment = shared_memory.SharedMemory(name=name)
            except FileNotFoundError:
                return True
            segment.close()
            return False

        while not all(unlinked(name) for name in names):
            assert time.time() < deadline, "abort leaked a segment"
            time.sleep(0.01)
        pool.close()


class TestDrain:
    def test_close_is_idempotent_and_decode_after_close_is_typed(self, store):
        pool = DecodePool(store.handle(), workers=1)
        pool.close()
        pool.close()
        with pytest.raises(DecodeWorkerError):
            pool.decode(store.keys())

    def test_drain_races_concurrent_submitters_without_deadlock(
        self, store, reference
    ):
        keys = store.keys()
        pool = DecodePool(store.handle(), workers=2)
        start = threading.Barrier(7)
        outcomes = []
        lock = threading.Lock()

        def submitter():
            start.wait()
            for _ in range(4):
                try:
                    served = pool.decode(keys)
                except DecodeWorkerError:
                    with lock:
                        outcomes.append("closed")
                else:
                    _assert_identical(reference, keys, served)
                    with lock:
                        outcomes.append("ok")

        threads = [threading.Thread(target=submitter) for _ in range(6)]
        for thread in threads:
            thread.start()
        start.wait()
        time.sleep(0.01)
        pool.close()
        for thread in threads:
            thread.join(timeout=60)
            assert not thread.is_alive(), "close() deadlocked a submitter"
        assert outcomes and set(outcomes) <= {"ok", "closed"}

    def test_every_segment_unlinked_on_close(self, store):
        pool = DecodePool(store.handle(), workers=3)
        names = [slot.shm.name for slot in pool._slots]
        pool.decode(store.keys())
        pool.close()
        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

    def test_segments_unlinked_even_with_dead_workers(self, store):
        pool = DecodePool(store.handle(), workers=2)
        names = [slot.shm.name for slot in pool._slots]
        with pytest.raises(DecodeWorkerError):
            pool.decode(store.keys(), _crash_worker=True)
        pool.close()
        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)


class TestPulseServerPool:
    def test_workers_zero_is_exactly_in_process(self, store, reference):
        keys = store.keys()
        with PulseServer(store, cache_capacity=len(keys), workers=0) as server:
            assert server.pool is None
            _assert_identical(reference, keys, server.fetch_batch(keys))
            assert server.stats().pool is None
            assert "pool" not in server.stats().as_dict()

    def test_pool_fills_are_bit_identical_and_cached(self, store, reference):
        keys = store.keys()
        with PulseServer(store, cache_capacity=len(keys), workers=2) as server:
            _assert_identical(reference, keys, server.fetch_batch(keys))
            cache = server.cache.stats()
            assert cache.insertions == len(keys)
            # Warm pass: all hits, the pool is not consulted again.
            jobs_before = server.pool.stats().jobs_ok
            _assert_identical(reference, keys, server.fetch_batch(keys))
            assert server.pool.stats().jobs_ok == jobs_before
            stats = server.stats().as_dict()
        assert stats["pool"]["workers"] == 2

    def test_single_flight_holds_under_pool_fills(self, store, reference):
        keys = store.keys()
        with PulseServer(store, cache_capacity=len(keys), workers=2) as server:
            barrier = threading.Barrier(8)
            failures = []

            def hammer():
                barrier.wait()
                try:
                    _assert_identical(reference, keys, server.fetch_batch(keys))
                except BaseException as exc:  # surfaced after join
                    failures.append(exc)

            threads = [threading.Thread(target=hammer) for _ in range(8)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
                assert not thread.is_alive()
            assert not failures
            cache = server.cache.stats()
            # Coalescing law: each key decoded and inserted exactly once.
            assert cache.insertions == len(keys)
            assert cache.evictions == 0

    def test_close_drains_the_pool(self, store):
        server = PulseServer(store, cache_capacity=4, workers=1)
        pool = server.pool
        server.close()
        assert server.pool is None
        with pytest.raises(DecodeWorkerError):
            pool.decode(store.keys())

    def test_workers_validated(self, store):
        with pytest.raises(StoreError):
            PulseServer(store, cache_capacity=4, workers=-1)


class TestClientRetry:
    @pytest.fixture()
    def serving(self, store):
        with PulseServer(store, cache_capacity=len(store.keys())) as server:
            with serve_in_thread(server) as handle:
                yield handle

    def test_retry_recovers_from_transient_overload(
        self, serving, store, reference
    ):
        keys = store.keys()
        with PulseClient(
            serving.address, retries=3, backoff=0.001, seed=7
        ) as client:
            real_roundtrip = client._roundtrip
            sheds = [2]

            def flaky_roundtrip(frame):
                if sheds[0]:
                    sheds[0] -= 1
                    raise ServerOverloadedError("test shed")
                return real_roundtrip(frame)

            client._roundtrip = flaky_roundtrip
            _assert_identical(reference, keys, client.fetch_batch(keys))
            assert client.retries_performed == 2

    def test_retries_exhausted_surfaces_overload(self, serving, store):
        with PulseClient(
            serving.address, retries=1, backoff=0.001, seed=7
        ) as client:
            def always_shed(frame):
                raise ServerOverloadedError("test shed")

            client._roundtrip = always_shed
            with pytest.raises(ServerOverloadedError):
                client.fetch_batch(store.keys())
            assert client.retries_performed == 1

    def test_async_client_retries(self, serving, store, reference):
        import asyncio

        keys = store.keys()

        async def _run():
            async with AsyncPulseClient(
                serving.address, retries=2, backoff=0.001, seed=7
            ) as client:
                real_roundtrip = client._roundtrip
                sheds = [1]

                async def flaky_roundtrip(frame):
                    if sheds[0]:
                        sheds[0] -= 1
                        raise ServerOverloadedError("test shed")
                    return await real_roundtrip(frame)

                client._roundtrip = flaky_roundtrip
                served = await client.fetch_batch(keys)
                assert client.retries_performed == 1
                return served

        _assert_identical(reference, keys, asyncio.run(_run()))

    def test_retry_delay_is_seeded_exponential_with_jitter(self):
        rng = random.Random(0)
        for attempt in range(4):
            step = 0.05 * 2**attempt
            delay = _retry_delay(rng, 0.05, attempt)
            assert 0.5 * step <= delay < 1.5 * step
        assert _retry_delay(random.Random(3), 0.05, 0) == _retry_delay(
            random.Random(3), 0.05, 0
        )

    def test_retry_validation(self):
        with pytest.raises(StoreError):
            PulseClient(("127.0.0.1", 1), retries=-1)
        with pytest.raises(StoreError):
            AsyncPulseClient(("127.0.0.1", 1), backoff=-0.1)

    def test_default_is_raise_immediately(self, serving, store):
        with PulseClient(serving.address) as client:
            assert (client.retries, client.retries_performed) == (0, 0)

            def always_shed(frame):
                raise ServerOverloadedError("test shed")

            client._roundtrip = always_shed
            with pytest.raises(ServerOverloadedError):
                client.fetch(*store.keys()[0])
            assert client.retries_performed == 0
