"""Tests for the pulse sequencer / instruction buffer / executor (Fig 6)."""

import numpy as np
import pytest

from repro.errors import ScheduleError
from repro.circuits import Circuit, ghz_circuit, schedule_circuit, transpile
from repro.core.controller import QubitController
from repro.devices import ibm_device
from repro.microarch import (
    ControllerExecutor,
    SeqInstruction,
    SeqOp,
    assemble_schedule,
)


@pytest.fixture(scope="module")
def controller():
    return QubitController(ibm_device("bogota"))


@pytest.fixture(scope="module")
def bogota_schedule(controller):
    circuit = transpile(ghz_circuit(3), controller.device.topology)
    return schedule_circuit(circuit, device=controller.device)


class TestInstructionSet:
    def test_invalid_opcode_rejected(self):
        with pytest.raises(ScheduleError):
            SeqInstruction("jump", duration=1)

    def test_play_requires_gate(self):
        with pytest.raises(ScheduleError):
            SeqInstruction(SeqOp.PLAY, duration=10)

    def test_negative_duration_rejected(self):
        with pytest.raises(ScheduleError):
            SeqInstruction(SeqOp.DELAY, duration=-1)


class TestAssembler:
    def test_streams_cover_schedule(self, bogota_schedule):
        program = assemble_schedule(bogota_schedule)
        assert program.makespan == bogota_schedule.makespan
        # every channel ends with END
        for stream in program.channels.values():
            assert stream[-1].opcode == SeqOp.END

    def test_delays_align_pulses(self, controller):
        circuit = Circuit(2, name="xx")
        circuit.x(0)
        circuit.x(0)
        circuit.x(1)
        schedule = schedule_circuit(circuit, device=controller.device)
        program = assemble_schedule(schedule)
        # qubit 0: two back-to-back plays, no delay between
        ops0 = [i.opcode for i in program.channels[0]]
        assert ops0 == [SeqOp.PLAY, SeqOp.PLAY, SeqOp.END]
        # qubit 1: a single play starting at t=0
        ops1 = [i.opcode for i in program.channels[1]]
        assert ops1 == [SeqOp.PLAY, SeqOp.END]

    def test_cx_occupies_both_channels(self, controller):
        circuit = Circuit(2).cx(0, 1)
        schedule = schedule_circuit(circuit, device=controller.device)
        program = assemble_schedule(schedule)
        assert 0 in program.channels and 1 in program.channels
        for channel in (0, 1):
            plays = [i for i in program.channels[channel] if i.opcode == SeqOp.PLAY]
            assert plays[0].gate == "cx"
            assert plays[0].qubits == (0, 1)

    def test_rz_emits_nothing(self, controller):
        circuit = Circuit(1).rz(0.5, 0).x(0)
        schedule = schedule_circuit(circuit, device=controller.device)
        program = assemble_schedule(schedule)
        plays = [i for i in program.channels[0] if i.opcode == SeqOp.PLAY]
        assert len(plays) == 1

    def test_instruction_buffer_accounting(self, bogota_schedule):
        program = assemble_schedule(bogota_schedule)
        assert program.instruction_buffer_bytes() == 8 * program.n_instructions


class TestExecutor:
    def test_end_to_end_streams(self, controller, bogota_schedule):
        trace = ControllerExecutor(controller).run_circuit(bogota_schedule)
        assert set(trace.i_streams) == set(
            assemble_schedule(bogota_schedule).channels
        )
        for stream in trace.i_streams.values():
            assert stream.size == bogota_schedule.makespan

    def test_pulse_placed_at_schedule_offset(self, controller):
        circuit = Circuit(1).x(0).x(0)
        schedule = schedule_circuit(circuit, device=controller.device)
        trace = ControllerExecutor(controller).run_circuit(schedule)
        duration = controller.device.gate_duration_samples("x", (0,))
        played = controller.played_waveform("x", (0,))
        i_codes, _ = played.to_fixed_point()
        np.testing.assert_array_equal(
            trace.i_streams[0][:duration], i_codes.astype(np.int64)
        )
        np.testing.assert_array_equal(
            trace.i_streams[0][duration : 2 * duration], i_codes.astype(np.int64)
        )

    def test_idle_samples_are_zero(self, controller):
        circuit = Circuit(2).x(0).cx(0, 1)
        schedule = schedule_circuit(circuit, device=controller.device)
        trace = ControllerExecutor(controller).run_circuit(schedule)
        x_duration = controller.device.gate_duration_samples("x", (0,))
        # channel 1 idles while the X on qubit 0 plays
        np.testing.assert_array_equal(trace.i_streams[1][:x_duration], 0)

    def test_bandwidth_gain_about_5x(self, controller, bogota_schedule):
        trace = ControllerExecutor(controller).run_circuit(bogota_schedule)
        assert trace.bandwidth_gain > 4.5
        assert trace.plays > 0
        assert trace.bram_reads > 0

    def test_channel_utilization_bounds(self, controller, bogota_schedule):
        trace = ControllerExecutor(controller).run_circuit(bogota_schedule)
        program = trace.program
        for channel in program.channels:
            utilization = trace.channel_utilization(channel)
            assert 0.0 < utilization <= 1.0

    def test_overlapping_schedule_rejected(self):
        from repro.circuits.schedule import Schedule, ScheduledGate

        schedule = Schedule()
        schedule.entries = [
            ScheduledGate("x", (0,), 0, 144),
            ScheduledGate("x", (0,), 100, 144),  # overlaps the first
        ]
        with pytest.raises(ScheduleError):
            assemble_schedule(schedule)
