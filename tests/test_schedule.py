"""Tests for ASAP scheduling and bandwidth profiling (Fig 5c inputs)."""

import pytest

from repro.errors import ScheduleError
from repro.circuits import (
    BYTES_PER_STREAM_PER_SECOND,
    Circuit,
    GateDurations,
    schedule_circuit,
    transpile,
    qaoa_circuit,
)
from repro.devices import ibm_device


class TestScheduling:
    def test_serial_chain(self):
        circuit = Circuit(1).x(0).sx(0).measure()
        schedule = schedule_circuit(circuit)
        starts = [e.start for e in schedule.entries]
        assert starts == [0, 144, 288]
        assert schedule.makespan == 288 + 1360

    def test_parallel_gates_share_time(self):
        circuit = Circuit(2).x(0).x(1)
        schedule = schedule_circuit(circuit)
        assert all(e.start == 0 for e in schedule.entries)
        assert schedule.peak_concurrent_gates == 2

    def test_rz_takes_zero_time(self):
        circuit = Circuit(1).rz(1.0, 0).x(0)
        schedule = schedule_circuit(circuit)
        x_entry = [e for e in schedule.entries if e.gate == "x"][0]
        assert x_entry.start == 0

    def test_cx_blocks_both_qubits(self):
        circuit = Circuit(2).cx(0, 1).x(0).x(1)
        schedule = schedule_circuit(circuit)
        for entry in schedule.entries:
            if entry.gate == "x":
                assert entry.start == 1360

    def test_measure_concurrent(self):
        """All measured qubits start readout together (Section III-A)."""
        circuit = Circuit(3).x(0).measure()
        schedule = schedule_circuit(circuit)
        measure_starts = {e.start for e in schedule.entries if e.gate == "measure"}
        assert len(measure_starts) == 1

    def test_device_durations_used(self):
        device = ibm_device("bogota")
        circuit = Circuit(2).cx(0, 1)
        schedule = schedule_circuit(circuit, device=device)
        cx_duration = device.gate_duration_samples("cx", (0, 1))
        assert schedule.entries[0].duration == cx_duration

    def test_unknown_gate_rejected(self):
        from repro.circuits import Instruction

        circuit = Circuit(1)
        circuit.instructions.append(Instruction("warp", (0,)))
        with pytest.raises(ScheduleError):
            schedule_circuit(circuit)


class TestBandwidthProfile:
    def test_peak_streams_at_measurement(self):
        """NISQ circuits peak when every qubit is read out at once."""
        circuit = transpile(qaoa_circuit(6, kind="3-regular", seed=2))
        schedule = schedule_circuit(circuit)
        assert schedule.peak_concurrent_streams == 6

    def test_peak_bandwidth_scales_with_streams(self):
        circuit = Circuit(4).measure()
        schedule = schedule_circuit(circuit)
        assert schedule.peak_bandwidth_bytes() == pytest.approx(
            4 * BYTES_PER_STREAM_PER_SECOND
        )

    def test_average_below_peak_for_nisq(self):
        """Fig 5c: QAOA average bandwidth well below peak."""
        circuit = transpile(qaoa_circuit(8, kind="3-regular", seed=3))
        schedule = schedule_circuit(circuit)
        assert schedule.average_bandwidth_bytes() < schedule.peak_bandwidth_bytes()

    def test_empty_schedule(self):
        schedule = schedule_circuit(Circuit(1))
        assert schedule.makespan == 0
        assert schedule.peak_concurrent_streams == 0
        assert schedule.average_concurrent_streams == 0.0

    def test_duration_seconds(self):
        circuit = Circuit(1).x(0)
        schedule = schedule_circuit(circuit)
        assert schedule.duration_seconds == pytest.approx(144 / 4.54e9)

    def test_custom_durations(self):
        durations = GateDurations(x=100, sx=100, rz=0, cx=500, measure=700)
        schedule = schedule_circuit(Circuit(1).x(0), durations)
        assert schedule.makespan == 100
