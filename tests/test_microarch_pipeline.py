"""Tests for the cycle-level decompression pipeline (Fig 10 / Fig 13b)."""

import numpy as np
import pytest

from repro.errors import CompressionError
from repro.compression import compress_waveform, decompress_waveform
from repro.core import adaptive_compress
from repro.microarch import (
    BaselineStreamer,
    DacBuffer,
    DecompressionPipeline,
    IdctEngine,
    RleDecoder,
)
from repro.pulses import Waveform, drag, gaussian_square
from repro.transforms import (
    TAG_COEFF,
    TAG_REPEAT,
    TAG_ZERO_RUN,
    EncodedWindow,
    MemoryWord,
    rle_encode_window,
)


def _drag_wf():
    return Waveform(
        "x_q0", drag(144, 0.18, 36, -0.7), dt=1 / 4.54e9, gate="x", qubits=(0,)
    )


def _flat_wf():
    return Waveform(
        "cr", gaussian_square(1360, 0.3, 64, 1104), dt=1 / 4.54e9, gate="cx",
        qubits=(0, 1),
    )


class TestRleDecoderUnit:
    def test_decode_matches_encode(self):
        window = rle_encode_window([500, -20] + [0] * 14)
        decoder = RleDecoder(16)
        out = decoder.decode(window.to_words())
        np.testing.assert_array_equal(out, [500, -20] + [0] * 14)
        assert decoder.zeros_expanded == 14

    def test_padding_after_codeword_ignored(self):
        words = EncodedWindow((7,), 15).to_words() + [MemoryWord(TAG_COEFF, 0)]
        out = RleDecoder(16).decode(words)
        assert out[0] == 7
        assert out.size == 16

    def test_payload_after_codeword_rejected(self):
        words = EncodedWindow((7,), 15).to_words() + [MemoryWord(TAG_COEFF, 3)]
        with pytest.raises(CompressionError):
            RleDecoder(16).decode(words)

    def test_repeat_word_rejected(self):
        with pytest.raises(CompressionError):
            RleDecoder(16).decode([MemoryWord(TAG_REPEAT, 16, 5)])

    def test_short_window_rejected(self):
        with pytest.raises(CompressionError):
            RleDecoder(16).decode([MemoryWord(TAG_COEFF, 1)])

    def test_empty_zero_run_rejected(self):
        with pytest.raises(CompressionError):
            RleDecoder(16).decode([MemoryWord(TAG_ZERO_RUN, 0)])

    def test_run_overflowing_window_rejected(self):
        words = [MemoryWord(TAG_COEFF, 1), MemoryWord(TAG_COEFF, 2)]
        with pytest.raises(CompressionError, match="overflow"):
            RleDecoder(16).decode(words + [MemoryWord(TAG_ZERO_RUN, 15)])

    def test_counters_untouched_by_rejected_windows(self):
        """A malformed window must not pollute the access accounting:
        after any number of failures the counters still equal the
        analytic values for the successfully decoded windows only."""
        decoder = RleDecoder(16)
        for bad in (
            [MemoryWord(TAG_ZERO_RUN, 20)],  # run overflows the window
            [MemoryWord(TAG_ZERO_RUN, 0)],  # empty run
            [MemoryWord(TAG_COEFF, 1)],  # short window
            [MemoryWord(TAG_REPEAT, 4, 7)],  # wrong pipeline
        ):
            with pytest.raises(CompressionError):
                decoder.decode(bad)
        assert decoder.windows_decoded == 0
        assert decoder.zeros_expanded == 0
        decoder.decode(rle_encode_window([5] + [0] * 15).to_words())
        assert decoder.windows_decoded == 1
        assert decoder.zeros_expanded == 15


class TestIdctEngineUnit:
    def test_wrong_size_rejected(self):
        with pytest.raises(CompressionError):
            IdctEngine(16).invert(np.zeros(8))

    def test_counts_invocations(self):
        engine = IdctEngine(8)
        engine.invert(np.zeros(8))
        engine.invert(np.zeros(8))
        assert engine.windows_processed == 2

    def test_int_variant_multiplierless(self):
        assert IdctEngine(16).op_counts.multipliers == 0

    def test_dct_w_variant_has_multipliers(self):
        assert IdctEngine(8, "DCT-W").op_counts.multipliers == 11

    def test_dct_n_rejected(self):
        with pytest.raises(CompressionError):
            IdctEngine(16, "DCT-N")


class TestDacBuffer:
    def test_underrun_detection(self):
        dac = DacBuffer(clock_ratio=16)
        dac.push(np.arange(8))
        assert dac.drain_cycle() == 8
        assert dac.underruns == 1

    def test_streams_in_order(self):
        dac = DacBuffer(clock_ratio=4)
        dac.push(np.arange(4))
        dac.push(np.arange(4, 8))
        dac.drain_cycle()
        dac.drain_cycle()
        np.testing.assert_array_equal(dac.streamed, np.arange(8))


class TestPipelineStreaming:
    @pytest.mark.parametrize("wf_factory", [_drag_wf, _flat_wf])
    @pytest.mark.parametrize("ws", [8, 16])
    def test_stream_bit_identical_to_codec(self, wf_factory, ws):
        """The headline hardware-model check: cycle-level streaming equals
        the functional decompressor sample for sample."""
        compressed = compress_waveform(wf_factory(), window_size=ws).compressed
        report = DecompressionPipeline(16).stream(compressed)
        reference = decompress_waveform(compressed)
        i_codes, q_codes = reference.to_fixed_point()
        np.testing.assert_array_equal(report.i_samples, i_codes.astype(np.int64))
        np.testing.assert_array_equal(report.q_samples, q_codes.astype(np.int64))

    def test_no_underruns_at_matched_rate(self):
        compressed = compress_waveform(_flat_wf(), window_size=16).compressed
        report = DecompressionPipeline(16).stream(compressed)
        assert report.sustains_dac

    def test_bandwidth_gain_over_5x(self):
        """Fig 2b: ~5x more DAC samples per memory word at WS=16."""
        compressed = compress_waveform(_flat_wf(), window_size=16).compressed
        report = DecompressionPipeline(16).stream(compressed)
        assert report.bandwidth_gain >= 5.0

    def test_baseline_gain_is_one(self):
        wf = _flat_wf()
        i_codes, q_codes = wf.to_fixed_point()
        report = BaselineStreamer(16).stream(
            i_codes.astype(np.int64), q_codes.astype(np.int64)
        )
        assert report.bandwidth_gain == pytest.approx(1.0)

    def test_compaqt_reads_far_fewer_words(self):
        wf = _flat_wf()
        compressed = compress_waveform(wf, window_size=16).compressed
        compaqt = DecompressionPipeline(16).stream(compressed)
        i_codes, q_codes = wf.to_fixed_point()
        baseline = BaselineStreamer(16).stream(
            i_codes.astype(np.int64), q_codes.astype(np.int64)
        )
        assert compaqt.bram_reads * 4 < baseline.bram_reads

    def test_rle_zeros_account_for_expansion(self):
        compressed = compress_waveform(_flat_wf(), window_size=16).compressed
        report = DecompressionPipeline(16).stream(compressed)
        # decoded samples = stored payload words + expanded zeros (I+Q)
        stored_payload = (
            compressed.i_channel.stored_words_variable
            + compressed.q_channel.stored_words_variable
        )
        n_codewords = sum(
            1 for w in compressed.i_channel.windows if w.zero_run > 0
        ) + sum(1 for w in compressed.q_channel.windows if w.zero_run > 0)
        decoded = 2 * compressed.n_windows * compressed.window_size
        assert (
            stored_payload - n_codewords + report.rle_zeros_expanded == decoded
        )


def _analytic_counters(compressed):
    """Counter values derived from the compressed image alone."""
    zeros = sum(w.zero_run for w in compressed.i_channel.windows) + sum(
        w.zero_run for w in compressed.q_channel.windows
    )
    windows = 2 * compressed.n_windows
    reads = 2 * compressed.n_windows * compressed.worst_case_window_words
    return zeros, windows, reads


class TestDecodeEdgeCases:
    """The regimes where RLE accounting off-by-ones hide: all-zero
    windows, incompressible windows, and padded single-sample tails."""

    def test_all_zero_waveform_analytic_counters(self):
        n, ws = 80, 16
        wf = Waveform(
            "zero", np.zeros(n, dtype=complex), dt=1e-9, gate="x", qubits=(0,)
        )
        compressed = compress_waveform(wf, window_size=ws).compressed
        n_windows = -(-n // ws)
        # Every window must collapse to a single zero-run codeword.
        for channel in (compressed.i_channel, compressed.q_channel):
            assert all(
                w.coeffs == () and w.zero_run == ws for w in channel.windows
            )
        assert compressed.worst_case_window_words == 1
        report = DecompressionPipeline(16).stream(compressed)
        assert report.rle_windows_decoded == 2 * n_windows
        assert report.rle_zeros_expanded == 2 * n_windows * ws
        assert report.idct_windows == 2 * n_windows
        assert report.bram_reads == 2 * n_windows
        assert not report.i_samples.any() and not report.q_samples.any()

    def test_incompressible_waveform_analytic_counters(self):
        """Worst case: threshold 0 on noise leaves (almost) no trailing
        zeros, so windows stay at full width and the RLE decoder must
        expand exactly the residual runs -- no more, no fewer."""
        rng = np.random.default_rng(7)
        n, ws = 64, 16
        samples = 0.65 * (rng.uniform(-1, 1, n) + 1j * rng.uniform(-1, 1, n))
        wf = Waveform("noise", samples, dt=1e-9, gate="x", qubits=(0,))
        compressed = compress_waveform(wf, window_size=ws, threshold=0).compressed
        # The workload is genuinely incompressible: at least one window
        # carries no codeword at all (zero_run == 0, full occupancy).
        all_windows = (
            compressed.i_channel.windows + compressed.q_channel.windows
        )
        assert any(w.zero_run == 0 and len(w.coeffs) == ws for w in all_windows)
        zeros, windows, reads = _analytic_counters(compressed)
        report = DecompressionPipeline(16).stream(compressed)
        assert report.rle_zeros_expanded == zeros
        assert report.rle_windows_decoded == windows
        assert report.idct_windows == windows
        assert report.bram_reads == reads
        reference = decompress_waveform(compressed)
        i_codes, q_codes = reference.to_fixed_point()
        np.testing.assert_array_equal(report.i_samples, i_codes.astype(np.int64))
        np.testing.assert_array_equal(report.q_samples, q_codes.astype(np.int64))

    @pytest.mark.parametrize("n", [1, 17, 33])
    def test_single_sample_tails(self, n):
        """Lengths of ws*k + 1: the padded tail window must decode to
        exactly one extra sample, and the counters still cover the full
        padded window."""
        ws = 16
        t = np.linspace(0, 1, n)
        wf = Waveform(
            "tail", 0.5 * np.exp(2j * np.pi * t) * 0.9, dt=1e-9, gate="x",
            qubits=(0,),
        )
        compressed = compress_waveform(wf, window_size=ws).compressed
        assert compressed.n_windows == -(-n // ws)
        report = DecompressionPipeline(16).stream(compressed)
        assert report.n_samples == n
        zeros, windows, reads = _analytic_counters(compressed)
        assert report.rle_zeros_expanded == zeros
        assert report.rle_windows_decoded == windows
        assert report.bram_reads == reads
        reference = decompress_waveform(compressed)
        i_codes, _ = reference.to_fixed_point()
        np.testing.assert_array_equal(report.i_samples, i_codes.astype(np.int64))

    def test_counters_match_compressed_accounting(self):
        """Analytic counter identities on realistic pulses."""
        for factory in (_drag_wf, _flat_wf):
            compressed = compress_waveform(factory(), window_size=16).compressed
            zeros, windows, reads = _analytic_counters(compressed)
            report = DecompressionPipeline(16).stream(compressed)
            assert report.rle_zeros_expanded == zeros
            assert report.rle_windows_decoded == windows
            assert report.idct_windows == windows
            assert report.bram_reads == reads


class TestAdaptiveStreaming:
    def test_adaptive_stream_matches_reconstruction(self):
        adaptive = adaptive_compress(_flat_wf())
        report = DecompressionPipeline(16).stream_adaptive(adaptive)
        i_codes, q_codes = adaptive.reconstructed.to_fixed_point()
        np.testing.assert_array_equal(report.i_samples, i_codes.astype(np.int64))
        np.testing.assert_array_equal(report.q_samples, q_codes.astype(np.int64))

    def test_bypass_counted(self):
        adaptive = adaptive_compress(_flat_wf())
        report = DecompressionPipeline(16).stream_adaptive(adaptive)
        assert report.bypass_samples == adaptive.bypass_samples
        assert report.bypass_samples > 0

    def test_adaptive_reads_fewer_than_plain(self):
        """Fig 19: the plateau requires no memory traffic."""
        wf = _flat_wf()
        plain = DecompressionPipeline(16).stream(
            compress_waveform(wf, window_size=16).compressed
        )
        adaptive = DecompressionPipeline(16).stream_adaptive(adaptive_compress(wf))
        assert adaptive.bram_reads < plain.bram_reads / 2
        assert adaptive.idct_windows < plain.idct_windows / 2
