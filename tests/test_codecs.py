"""Codec registry contracts and the promoted delta/dictionary kernels.

The registry is the single dispatch point for every pipeline layer, so
these tests pin its API: built-in registration, name resolution (with
the error message listing registered codecs), third-party registration
reaching the whole stack, and the scalar/vectorized kernel parity of
the two promoted codecs.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CompressionError
from repro.compression import compress_channel, compress_waveform
from repro.compression.codecs import (
    DCT_N,
    DCT_W,
    DELTA,
    DICTIONARY,
    INT_DCT_W,
    Codec,
    codec_for_wire_id,
    get_codec,
    list_codecs,
    register_codec,
    resolve_codec,
    unregister_codec,
    wrap_int16,
)
from repro.compression.codecs.dictionary import _row_modes
from repro.pulses import Waveform

int16s = st.integers(min_value=-32768, max_value=32767)


def _blocks(draw_rows):
    return np.asarray(draw_rows, dtype=np.int64)


class TestRegistry:
    def test_builtins_registered_in_wire_id_order(self):
        assert list_codecs() == (
            "DCT-N", "DCT-W", "int-DCT-W", "delta", "dictionary"
        )
        for expected_id, name in enumerate(list_codecs()):
            codec = get_codec(name)
            assert codec.wire_id == expected_id
            assert codec_for_wire_id(expected_id) is codec

    def test_capability_flags(self):
        assert not DCT_N.windowed and DCT_W.windowed
        assert DCT_N.exact_rational_rows and DCT_W.exact_rational_rows
        assert not INT_DCT_W.exact_rational_rows
        assert DELTA.lossless and DICTIONARY.lossless
        assert not INT_DCT_W.lossless
        assert all(get_codec(name).batchable for name in list_codecs())
        assert INT_DCT_W.supported_window_sizes == (4, 8, 16, 32)
        assert DELTA.supported_window_sizes is None

    def test_unknown_name_lists_registered_codecs(self):
        with pytest.raises(CompressionError, match="registered codecs"):
            get_codec("DCT-Z")
        with pytest.raises(CompressionError, match="int-DCT-W"):
            get_codec("DCT-Z")

    def test_unknown_variant_through_pipeline(self):
        wf = Waveform("w", 0.5 * np.hanning(32) * (1 + 1j), dt=1e-9)
        with pytest.raises(CompressionError, match="registered codecs"):
            compress_waveform(wf, variant="DCT-Z")

    def test_resolve_passes_codec_objects_through(self):
        assert resolve_codec(INT_DCT_W) is INT_DCT_W
        assert resolve_codec("int-DCT-W") is INT_DCT_W
        with pytest.raises(CompressionError, match="Codec instance"):
            resolve_codec(42)

    def test_unknown_wire_id(self):
        with pytest.raises(CompressionError, match="known ids"):
            codec_for_wire_id(200)

    def test_register_validation(self):
        class Bad(Codec):
            name = ""
            wire_id = 99

            def forward(self, block):
                return block

            def inverse(self, coeffs):
                return coeffs

            def forward_blocks(self, blocks):
                return blocks

            def inverse_blocks(self, coeffs):
                return coeffs

        with pytest.raises(CompressionError, match="non-empty name"):
            register_codec(Bad())
        bad = Bad()
        bad.name = "dup"
        bad.wire_id = 2  # already int-DCT-W's
        with pytest.raises(CompressionError, match="already taken"):
            register_codec(bad)
        bad.wire_id = 4096
        with pytest.raises(CompressionError, match="u8"):
            register_codec(bad)
        bad.name = "delta"
        bad.wire_id = 99
        with pytest.raises(CompressionError, match="already registered"):
            register_codec(bad)
        with pytest.raises(CompressionError, match="Codec instance"):
            register_codec("not-a-codec")
        with pytest.raises(CompressionError, match="not registered"):
            unregister_codec("never-was")


class _NegateCodec(Codec):
    """The README's worked example: store negated samples verbatim."""

    name = "negate"
    wire_id = 200
    windowed = True
    batchable = True
    lossless = True

    def forward(self, block):
        return -self._require_1d(block, "window")

    def inverse(self, coeffs):
        return -self._require_1d(coeffs, "coefficient window")

    def forward_blocks(self, blocks):
        return -self._require_2d(blocks, "blocks")

    def inverse_blocks(self, coeffs):
        return -self._require_2d(coeffs, "coefficients")


@pytest.fixture
def negate_codec():
    codec = register_codec(_NegateCodec())
    try:
        yield codec
    finally:
        unregister_codec(codec.name)


class TestThirdPartyRegistration:
    def test_reaches_every_layer(self, negate_codec):
        """One register_codec call plugs a codec into the pipeline, the
        batch engine, the wire format and the compiler."""
        from repro.compression import (
            compress_batch,
            decompress_batch,
            decompress_waveform,
            parse_waveform,
            serialize_waveform,
        )
        from repro.core import CompaqtCompiler
        from repro.devices import ibm_device

        wf = Waveform(
            "w", 0.4 * np.hanning(40) * (1 - 0.5j), dt=1e-9, gate="x", qubits=(0,)
        )
        result = compress_waveform(wf, window_size=16, variant="negate", threshold=0)
        i_codes, _ = wf.to_fixed_point()
        np.testing.assert_array_equal(
            result.reconstructed.to_fixed_point()[0], i_codes
        )
        blob = serialize_waveform(result.compressed)
        assert blob[4] == 200
        parsed = parse_waveform(blob)
        assert parsed == result.compressed
        np.testing.assert_array_equal(
            decompress_waveform(parsed).samples, result.reconstructed.samples
        )
        batch = compress_batch([wf, wf], window_size=16, variant="negate", threshold=0)
        assert batch[0].compressed == result.compressed
        np.testing.assert_array_equal(
            decompress_batch(batch)[0].samples, result.reconstructed.samples
        )
        compiled = CompaqtCompiler(variant=negate_codec).compile_library(
            ibm_device("bogota").pulse_library()
        )
        assert compiled.variant == "negate"

    def test_scalar_only_codec_falls_back_row_by_row(self):
        """A batchable=False codec that implements only the scalar pair
        still works through the batch engine, bit-identical to the
        scalar pipeline, via the base class's default block kernels."""
        from repro.compression import compress_batch, decompress_batch

        class ScalarOnly(Codec):
            name = "scalar-only"
            wire_id = 201
            windowed = True
            batchable = False
            lossless = True

            def forward(self, block):
                return -self._require_1d(block, "window")

            def inverse(self, coeffs):
                return -self._require_1d(coeffs, "coefficient window")

        codec = register_codec(ScalarOnly())
        try:
            wf = Waveform(
                "w", 0.4 * np.hanning(40) * (1 - 0.2j), dt=1e-9, gate="x",
                qubits=(0,),
            )
            scalar = compress_waveform(wf, window_size=16, variant=codec)
            batch = compress_batch([wf, wf], window_size=16, variant=codec)
            assert batch[0].compressed == scalar.compressed
            np.testing.assert_array_equal(
                decompress_batch(batch)[1].samples,
                scalar.reconstructed.samples,
            )
        finally:
            unregister_codec("scalar-only")

    def test_unregistering_breaks_serialization_cleanly(self):
        codec = register_codec(_NegateCodec())
        try:
            wf = Waveform("w", 0.4 * np.hanning(40) * (1 + 1j), dt=1e-9)
            compressed = compress_waveform(wf, variant=codec).compressed
        finally:
            unregister_codec("negate")
        from repro.compression import serialize_waveform

        with pytest.raises(CompressionError, match="unknown variant"):
            serialize_waveform(compressed)


class TestWrapInt16:
    def test_identity_in_range(self):
        values = np.array([-32768, -1, 0, 1, 32767])
        np.testing.assert_array_equal(wrap_int16(values), values)

    def test_wraps_out_of_range(self):
        assert wrap_int16(np.array([32768]))[0] == -32768
        assert wrap_int16(np.array([-32769]))[0] == 32767
        assert wrap_int16(np.array([65536]))[0] == 0

    @given(st.lists(int16s, min_size=1, max_size=8), st.lists(int16s, min_size=1, max_size=8))
    @settings(max_examples=60, deadline=None)
    def test_modular_addition_is_associative(self, a, b):
        """wrap(a + b) == wrap(wrap(a) + wrap(b)): the invariant the
        delta cumsum inverse relies on."""
        a, b = np.resize(a, 8), np.resize(b, 8)
        np.testing.assert_array_equal(
            wrap_int16(a + b), wrap_int16(wrap_int16(a) + wrap_int16(b))
        )


class TestDeltaKernels:
    @given(st.lists(st.lists(int16s, min_size=16, max_size=16), min_size=1, max_size=8))
    @settings(max_examples=60, deadline=None)
    def test_scalar_blocks_parity_and_roundtrip(self, rows):
        blocks = _blocks(rows)
        coeffs = DELTA.forward_blocks(blocks)
        assert coeffs.shape == blocks.shape
        assert np.all(coeffs >= -32768) and np.all(coeffs <= 32767)
        for row, out in zip(blocks, coeffs):
            np.testing.assert_array_equal(DELTA.forward(row), out)
        back = DELTA.inverse_blocks(coeffs)
        np.testing.assert_array_equal(back, blocks)
        for row, out in zip(coeffs, back):
            np.testing.assert_array_equal(DELTA.inverse(row), out)

    def test_wraps_across_large_jumps(self):
        """A full-range jump wraps on encode and un-wraps on decode."""
        block = np.array([-32768, 32767, -32768, 0])
        coeffs = DELTA.forward(block)
        assert np.all(coeffs <= 32767) and np.all(coeffs >= -32768)
        np.testing.assert_array_equal(DELTA.inverse(coeffs), block)

    def test_constant_window_is_one_word(self):
        coeffs = DELTA.forward(np.full(16, 123))
        assert coeffs[0] == 123
        assert np.count_nonzero(coeffs) == 1


class TestDictionaryKernels:
    @given(st.lists(st.lists(int16s, min_size=8, max_size=8), min_size=1, max_size=8))
    @settings(max_examples=60, deadline=None)
    def test_scalar_blocks_parity_and_roundtrip(self, rows):
        blocks = _blocks(rows)
        coeffs = DICTIONARY.forward_blocks(blocks)
        assert coeffs.shape == (blocks.shape[0], blocks.shape[1] + 1)
        assert np.all(coeffs >= -32768) and np.all(coeffs <= 32767)
        for row, out in zip(blocks, coeffs):
            np.testing.assert_array_equal(DICTIONARY.forward(row), out)
        back = DICTIONARY.inverse_blocks(coeffs)
        np.testing.assert_array_equal(back, blocks)
        for row, out in zip(coeffs, back):
            np.testing.assert_array_equal(DICTIONARY.inverse(row), out)

    def test_coeff_count_reserves_entry_slot(self):
        assert DICTIONARY.coeff_count(16) == 17
        assert DELTA.coeff_count(16) == 16

    def test_mode_is_most_frequent_value(self):
        modes = _row_modes(np.array([[5, 5, 5, 2, 2, 9, 9, 9]]))
        assert modes[0] == 5  # 5 and 9 tie at three; ties break smallest
        assert _row_modes(np.array([[7, 1, 7, 1, 7, 0, 0, 2]]))[0] == 7

    def test_tie_breaks_are_deterministic_and_smallest(self):
        modes = _row_modes(np.array([[4, 4, -3, -3, 10, 10, 2, 7]]))
        assert modes[0] == -3

    def test_mode_samples_become_zero_residuals(self):
        block = np.array([0, 0, 0, 0, 0, 0, 150, 0])
        coeffs = DICTIONARY.forward(block)
        assert coeffs[0] == 0  # the dictionary entry (mode)
        assert np.count_nonzero(coeffs) == 1  # only the 150 survives


class TestWrappedThresholding:
    """The threshold cut sees un-wrapped residuals, not the stored words."""

    def test_delta_large_jump_survives_threshold(self):
        """A -32768 -> 32760 jump stores wrapped -8; |−8| < 128 must NOT
        zero it, or the decoder holds full scale across the jump."""
        codes = np.array([-32768, 32760, 32760, 32760], dtype=np.int64)
        channel = compress_channel(codes, 4, "delta", threshold=128)
        from repro.compression.pipeline import decompress_channel

        np.testing.assert_array_equal(decompress_channel(channel), codes)

    def test_delta_small_true_step_still_dropped(self):
        codes = np.array([1000, 1005, 1005, 1005], dtype=np.int64)
        channel = compress_channel(codes, 4, "delta", threshold=128)
        assert channel.windows[0].n_words == 2  # base + codeword
        from repro.compression.pipeline import decompress_channel

        np.testing.assert_array_equal(
            decompress_channel(channel), [1000, 1000, 1000, 1000]
        )

    def test_dictionary_far_sample_survives_threshold(self):
        """A sample 40000 codes from the entry stores wrapped -25536;
        the cut on the true distance must keep it."""
        codes = np.array([-20000, -20000, -20000, 20000], dtype=np.int64)
        channel = compress_channel(codes, 4, "dictionary", threshold=128)
        from repro.compression.pipeline import decompress_channel

        np.testing.assert_array_equal(decompress_channel(channel), codes)

    def test_dictionary_entry_slot_never_thresholded(self):
        """Zeroing a small entry would re-base every wrapped residual;
        the entry must survive any threshold."""
        coeffs = DICTIONARY.forward(np.array([50, 50, 50, -32700]))
        kept = DICTIONARY.threshold_blocks(coeffs.reshape(1, -1), 128)[0]
        assert kept[0] == 50  # the entry
        from repro.compression.pipeline import decompress_channel

        codes = np.array([50, 50, 50, -32700], dtype=np.int64)
        channel = compress_channel(codes, 4, "dictionary", threshold=128)
        np.testing.assert_array_equal(decompress_channel(channel), codes)

    def test_delta_rail_ripple_never_wraps(self):
        """Sub-threshold dips at full scale followed by a kept recovery
        delta: open-loop coding would apply the recovery word to the
        drifted held value and wrap to ~-32269; closed-loop re-basing
        keeps every decoded sample near the rail."""
        codes = np.array(
            [32767] * 4 + [32667, 32567, 32467, 32367, 32267] + [32767] * 7,
            dtype=np.int64,
        )
        channel = compress_channel(codes, 16, "delta", threshold=128)
        from repro.compression.pipeline import decompress_channel

        decoded = decompress_channel(channel)
        assert decoded.min() > 30000  # no sign-flipped glitch
        assert np.all(np.abs(decoded - codes) <= 5 * 128)
        # samples after the recovery step decode exactly
        np.testing.assert_array_equal(decoded[9:], codes[9:])

    def test_delta_kept_samples_decode_exactly(self):
        codes = np.array([0, 5000, 5003, 10000, 10001, 10002, 0, 1], dtype=np.int64)
        channel = compress_channel(codes, 8, "delta", threshold=128)
        from repro.compression.pipeline import decompress_channel

        decoded = decompress_channel(channel)
        kept = np.abs(np.diff(np.concatenate(([0], codes)))) >= 128
        np.testing.assert_array_equal(decoded[kept], codes[kept])

    @given(
        st.lists(int16s, min_size=8, max_size=8),
        st.integers(min_value=0, max_value=4000),
    )
    @settings(max_examples=60, deadline=None)
    def test_threshold_error_bounded_by_window_drift(self, row, threshold):
        """Dropping only sub-threshold true steps bounds the per-sample
        decode error by the accumulated window drift (ws * threshold),
        modulo the int16 range -- no full-scale aliasing from one word."""
        codes = np.asarray(row, dtype=np.int64)
        channel = compress_channel(codes, 8, "delta", threshold=threshold)
        from repro.compression.pipeline import decompress_channel

        decoded = decompress_channel(channel)
        error = np.abs(decoded - codes)
        wrapped_error = np.minimum(error, 65536 - error)
        assert np.all(wrapped_error <= 8 * max(threshold, 1))


class TestWrappedTopK:
    """The top-k cap must also rank by un-wrapped residuals."""

    def test_delta_top_k_keeps_full_range_jump(self):
        """The -65535 jump stores wrapped word +1; ranking by stored
        magnitude would drop it first and hold full scale."""
        codes = np.array(
            [32767, -32768, 1000, 1000, 1000, 1000, 2000, 3000], dtype=np.int64
        )
        channel = compress_channel(
            codes, 8, "delta", threshold=0, max_coefficients=3
        )
        from repro.compression.pipeline import decompress_channel

        decoded = decompress_channel(channel)
        np.testing.assert_array_equal(decoded[:2], codes[:2])  # jump survives
        error = np.abs(decoded - codes)
        assert np.all(np.minimum(error, 65536 - error) <= 2000)

    def test_dictionary_top_k_never_drops_entry(self):
        codes = np.array([-20000, -20000, -20000, 20000], dtype=np.int64)
        channel = compress_channel(
            codes, 4, "dictionary", threshold=0, max_coefficients=2
        )
        window = channel.windows[0]
        assert window.coeffs[0] == -20000  # the entry stays
        from repro.compression.pipeline import decompress_channel

        decoded = decompress_channel(channel)
        np.testing.assert_array_equal(decoded[:3], codes[:3])
        assert decoded[3] == 20000  # wrapped residual ranked by true 40000

    def test_negative_threshold_rejected_for_wrapped_codecs(self):
        from repro.compression import compress_waveform_overlapping

        wf = Waveform("w", 0.5 * np.hanning(32) * (1 + 1j), dt=1e-9)
        for variant in ("delta", "dictionary"):
            with pytest.raises(CompressionError, match=">= 0"):
                compress_channel(np.arange(8), 8, variant, threshold=-50)
            with pytest.raises(CompressionError, match=">= 0"):
                compress_waveform_overlapping(wf, 8, variant, threshold=-50)
        # Every codec shares the contract, DCT family included.
        for name in list_codecs():
            with pytest.raises(CompressionError, match=">= 0"):
                get_codec(name).threshold_blocks(np.zeros((1, 8)), -1)
        with pytest.raises(CompressionError, match="max_coefficients"):
            compress_waveform_overlapping(wf, 8, "int-DCT-W", max_coefficients=-1)


class TestUnregisteredCodecObjects:
    def test_compress_rejects_unregistered_codec_early(self):
        wf = Waveform("w", 0.5 * np.hanning(32) * (1 + 1j), dt=1e-9)
        stray = _NegateCodec()  # never registered
        with pytest.raises(CompressionError, match="not registered"):
            compress_waveform(wf, variant=stray)
        from repro.compression import compress_batch

        with pytest.raises(CompressionError, match="not registered"):
            compress_batch([wf], variant=stray)

    def test_stale_replaced_instance_rejected(self):
        first = register_codec(_NegateCodec())
        try:
            second = register_codec(_NegateCodec(), replace=True)
            wf = Waveform("w", 0.5 * np.hanning(32) * (1 + 1j), dt=1e-9)
            with pytest.raises(CompressionError, match="not registered"):
                compress_waveform(wf, variant=first)
            assert compress_waveform(wf, variant=second).compressed.variant == "negate"
        finally:
            unregister_codec("negate")


class TestWindowSizeValidation:
    def test_int_dct_rejects_odd_sizes(self):
        with pytest.raises(CompressionError, match="window"):
            INT_DCT_W.check_window_size(12)
        INT_DCT_W.check_window_size(16)

    def test_delta_accepts_any_positive_size(self):
        DELTA.check_window_size(3)
        with pytest.raises(CompressionError):
            DELTA.check_window_size(0)

    def test_full_frame_resolves_to_pulse_length(self):
        assert DCT_N.resolve_window_size(77, 16) == 77
        assert DCT_W.resolve_window_size(77, 16) == 16
